// Package admission is the serving stack's overload story: a shared
// admission controller that bounds how much work the process accepts
// before the batching schedulers ever see it. Both front ends — the HTTP
// handlers in cmd/serve and the RPS2 streaming listener
// (internal/serve/stream) — consult one Controller per process, so a
// deployment's capacity limits hold regardless of which protocol the
// traffic arrives on.
//
// The model is deliberately simple and allocation-free on the admit path:
// a global in-flight cap, optional per-model quotas, and immediate load
// shedding with a typed OverloadError carrying a Retry-After hint.
// Shedding beats queueing past capacity: a request that would wait longer
// than its caller's patience only wastes a batch slot, and the paper's
// deployment target (embedded/mobile inference behind heavy traffic)
// cares about bounded tail latency more than about never saying no.
// Deadline-aware shedding of work already admitted — dropping requests
// past their SLO before running them — lives in the batch scheduler
// itself (serve.Options.SLO), which reuses this package's error type so
// every shed looks the same to clients.
package admission

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Shed reasons, recorded in OverloadError.Reason and the Stats counters.
const (
	// ReasonInflight: the global in-flight cap is reached.
	ReasonInflight = "inflight"
	// ReasonQuota: the target model's admission quota is reached.
	ReasonQuota = "quota"
	// ReasonQueue: a bounded accept/pipeline queue is full (used by the
	// streaming listener when a connection's pending window overflows).
	ReasonQueue = "queue"
	// ReasonSLO: the request sat queued past its latency SLO and was
	// dropped by the batch scheduler before execution.
	ReasonSLO = "slo"
	// ReasonFairness: the requesting connection's in-flight share is
	// exhausted — one hot pipelined connection may not consume the whole
	// global budget.
	ReasonFairness = "fairness"
)

// OverloadError is the typed load-shed error every overload path returns:
// the HTTP layer maps it to 429 with a Retry-After header, the streaming
// layer to a status frame, and the batch scheduler's SLO shed reuses it so
// clients see one error shape for "the server chose not to do this work".
type OverloadError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// Model is the name the shed request was addressed to, when known.
	Model string
	// RetryAfter is the server's backoff hint; 0 means none was
	// configured.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	msg := "admission: overloaded (" + e.Reason + ")"
	if e.Model != "" {
		msg += " model " + e.Model
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(", retry after %v", e.RetryAfter)
	}
	return msg
}

// Config parameterises a Controller. The zero value admits everything
// (useful as an explicit "no limits" controller in tests).
type Config struct {
	// MaxInflight caps concurrently admitted requests across all models;
	// 0 means unlimited.
	MaxInflight int
	// Quota caps concurrently admitted requests per model name (the bare
	// name, not name@version — a hot-swap must not reset the budget);
	// models without an entry are bounded only by MaxInflight.
	Quota map[string]int
	// MaxPerConn caps concurrently admitted requests per client
	// connection (fairness share), enforced for front ends that pass a
	// ConnState to AdmitConn; 0 means unlimited. A connection at its
	// share is shed with ReasonFairness even when global capacity
	// remains, so pipelining depth on one connection cannot starve the
	// others.
	MaxPerConn int
	// RetryAfter is the backoff hint attached to shed errors.
	RetryAfter time.Duration
}

// Stats is a point-in-time snapshot of the controller's counters.
type Stats struct {
	// Admitted counts requests that passed admission.
	Admitted uint64 `json:"admitted"`
	// ShedInflight, ShedQuota and ShedFairness count rejections by
	// reason.
	ShedInflight uint64 `json:"shed_inflight"`
	ShedQuota    uint64 `json:"shed_quota"`
	ShedFairness uint64 `json:"shed_fairness"`
	// Inflight is the number of currently admitted, unreleased requests.
	Inflight int64 `json:"inflight"`
}

// Controller enforces a Config. It is safe for use by any number of
// goroutines, and the admit/release round trip performs no allocation and
// takes no locks — two atomic adds each way.
type Controller struct {
	cfg      Config
	inflight atomic.Int64
	quotas   map[string]*quota // read-only after New

	admitted     atomic.Uint64
	shedInflight atomic.Uint64
	shedQuota    atomic.Uint64
	shedFairness atomic.Uint64
}

type quota struct {
	limit    int64
	inflight atomic.Int64
}

// New builds a controller for cfg. The quota map is copied; later
// mutations of cfg.Quota have no effect.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg}
	if len(cfg.Quota) > 0 {
		c.quotas = make(map[string]*quota, len(cfg.Quota))
		for name, limit := range cfg.Quota {
			if limit > 0 {
				c.quotas[name] = &quota{limit: int64(limit)}
			}
		}
	}
	return c
}

// RetryAfter returns the configured backoff hint.
func (c *Controller) RetryAfter() time.Duration { return c.cfg.RetryAfter }

// Ticket is an admitted request's reservation. Release returns the
// capacity; it must be called exactly once, after the request completes
// or fails. The zero Ticket (from a rejected Admit) releases nothing, so
// callers may defer Release unconditionally.
type Ticket struct {
	c  *Controller
	q  *quota
	cs *ConnState
}

// ConnState is one client connection's admission accounting. A front end
// creates one per accepted connection and passes it to AdmitConn so the
// controller can enforce the per-connection fairness share. The zero
// value is ready to use.
type ConnState struct {
	inflight atomic.Int64
}

// Inflight reports the connection's currently admitted requests.
func (cs *ConnState) Inflight() int64 { return cs.inflight.Load() }

// Release returns the ticket's capacity to the controller.
//
//repro:noalloc
func (t Ticket) Release() {
	if t.c == nil {
		return
	}
	t.c.inflight.Add(-1)
	if t.q != nil {
		t.q.inflight.Add(-1)
	}
	if t.cs != nil {
		t.cs.inflight.Add(-1)
	}
}

// Admit reserves capacity for one request addressed to the named model
// (bare name; the caller resolves versions). It never blocks: past any
// cap it returns a zero Ticket and an *OverloadError, and the caller is
// expected to shed the request with that error immediately.
//
//repro:noalloc
func (c *Controller) Admit(model string) (Ticket, error) {
	return c.AdmitConn(model, nil)
}

// AdmitConn is Admit with the requesting connection's fairness
// accounting: when Config.MaxPerConn is set and cs is non-nil, the
// connection's share is checked first — before any global capacity is
// reserved — so a connection at its share sheds with ReasonFairness
// without touching the budget the other connections are using. Front
// ends without per-connection identity (one-shot HTTP) pass nil.
//
//repro:noalloc
func (c *Controller) AdmitConn(model string, cs *ConnState) (Ticket, error) {
	if cs != nil && c.cfg.MaxPerConn > 0 {
		if cs.inflight.Add(1) > int64(c.cfg.MaxPerConn) {
			cs.inflight.Add(-1)
			c.shedFairness.Add(1)
			return Ticket{}, &OverloadError{Reason: ReasonFairness, Model: model, RetryAfter: c.cfg.RetryAfter}
		}
	} else {
		cs = nil // no share accounting on the ticket
	}
	if n := c.inflight.Add(1); c.cfg.MaxInflight > 0 && n > int64(c.cfg.MaxInflight) {
		c.inflight.Add(-1)
		if cs != nil {
			cs.inflight.Add(-1)
		}
		c.shedInflight.Add(1)
		return Ticket{}, &OverloadError{Reason: ReasonInflight, Model: model, RetryAfter: c.cfg.RetryAfter}
	}
	q := c.quotas[model]
	if q != nil && q.inflight.Add(1) > q.limit {
		q.inflight.Add(-1)
		c.inflight.Add(-1)
		if cs != nil {
			cs.inflight.Add(-1)
		}
		c.shedQuota.Add(1)
		return Ticket{}, &OverloadError{Reason: ReasonQuota, Model: model, RetryAfter: c.cfg.RetryAfter}
	}
	c.admitted.Add(1)
	return Ticket{c: c, q: q, cs: cs}, nil
}

// Overloaded builds the typed shed error front ends use for their own
// bounded queues (ReasonQueue), with this controller's Retry-After hint.
func (c *Controller) Overloaded(reason, model string) *OverloadError {
	return &OverloadError{Reason: reason, Model: model, RetryAfter: c.cfg.RetryAfter}
}

// RegisterMetrics exposes the controller's counters on r as
// callback-backed Prometheus series: repro_admission_admitted_total,
// repro_admission_shed_total{reason="inflight"|"quota"} and the
// repro_admission_inflight gauge. The callbacks read the same atomics
// Stats snapshots, so the /stats JSON and a /metrics scrape can never
// report different admission numbers. Safe to call once per controller;
// a process runs one controller, so the series carry no extra labels.
func (c *Controller) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("repro_admission_admitted_total", "Requests that passed admission control.",
		func() float64 { return float64(c.admitted.Load()) })
	r.CounterFunc("repro_admission_shed_total", "Requests rejected at admission, by reason.",
		func() float64 { return float64(c.shedInflight.Load()) }, "reason", ReasonInflight)
	r.CounterFunc("repro_admission_shed_total", "Requests rejected at admission, by reason.",
		func() float64 { return float64(c.shedQuota.Load()) }, "reason", ReasonQuota)
	r.CounterFunc("repro_admission_shed_total", "Requests rejected at admission, by reason.",
		func() float64 { return float64(c.shedFairness.Load()) }, "reason", ReasonFairness)
	r.GaugeFunc("repro_admission_inflight", "Currently admitted, unreleased requests.",
		func() float64 { return float64(c.inflight.Load()) })
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Admitted:     c.admitted.Load(),
		ShedInflight: c.shedInflight.Load(),
		ShedQuota:    c.shedQuota.Load(),
		ShedFairness: c.shedFairness.Load(),
		Inflight:     c.inflight.Load(),
	}
}
