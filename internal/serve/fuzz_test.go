package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// fuzz seeds: valid frames of both codecs plus the hostile shapes the
// hardening checks exist for. The fuzzer mutates from here into the
// interesting corners (header/body length disagreements, huge counts,
// wrapped 32-bit fields, bad cached flags).

func wireRequestSeed(t testing.TB, inputs [][]float64) []byte {
	t.Helper()
	b, err := AppendWireRequest(nil, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func wireResultsSeed(t testing.TB, results []Result) []byte {
	t.Helper()
	b, err := AppendWireResults(nil, results)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzDecodeWireRequest drives both request decoders with arbitrary
// bytes: no input may panic or allocate past the MaxWireBytes bound, the
// in-memory and reader decoders must agree, and anything that decodes
// must re-encode to the identical bytes (the format is canonical —
// comparing bytes also makes the check NaN-safe, scores travel as raw
// float bits).
func FuzzDecodeWireRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(wireRequestSeed(f, [][]float64{{1, 2, 3}}))
	f.Add(wireRequestSeed(f, [][]float64{{math.NaN(), math.Inf(1)}, {0, math.Copysign(0, -1)}}))
	valid := wireRequestSeed(f, [][]float64{{0.5, -0.5}})
	f.Add(valid[:7])                      // truncated header
	f.Add(valid[:len(valid)-3])           // truncated body
	f.Add(append(valid, 0xAA))            // trailing garbage
	f.Add([]byte("RPO1\x01\x00\x00\x00")) // response magic on the request decoder
	hostile := make([]byte, 12)
	binary.LittleEndian.PutUint32(hostile[0:], wireReqMagic)
	binary.LittleEndian.PutUint32(hostile[4:], 0xFFFFFFFF) // count wraps negative as int32
	binary.LittleEndian.PutUint32(hostile[8:], 0xFFFFFFFF)
	f.Add(append([]byte(nil), hostile...))
	binary.LittleEndian.PutUint32(hostile[4:], 1<<16) // count*dim overflows MaxWireBytes
	binary.LittleEndian.PutUint32(hostile[8:], 1<<16)
	f.Add(append([]byte(nil), hostile...))
	binary.LittleEndian.PutUint32(hostile[4:], 0) // zero count
	binary.LittleEndian.PutUint32(hostile[8:], 0)
	f.Add(append([]byte(nil), hostile...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch WireRequestScratch
		inputs, err := ParseWireRequest(data, &scratch)
		if err != nil {
			// The reader form accepts a valid prefix with trailing bytes
			// (it stops at the described length); it must never succeed on
			// something the stricter in-memory parser rejected for any
			// other reason, so re-check only the success path below.
			return
		}
		if len(data) > MaxWireBytes {
			t.Fatalf("decoded a %d-byte request past the %d-byte bound", len(data), MaxWireBytes)
		}
		reenc, err := AppendWireRequest(nil, inputs)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("request round trip changed bytes: %d in, %d out", len(data), len(reenc))
		}
		rd, err := DecodeWireRequest(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("reader decoder rejected what the parser accepted: %v", err)
		}
		if len(rd) != len(inputs) {
			t.Fatalf("decoders disagree: %d vs %d inputs", len(rd), len(inputs))
		}
		for i := range rd {
			for j := range rd[i] {
				if math.Float64bits(rd[i][j]) != math.Float64bits(inputs[i][j]) {
					t.Fatalf("decoders disagree at input %d feature %d", i, j)
				}
			}
		}
	})
}

// FuzzDecodeWireResults is the response-side twin: arbitrary bytes must
// not panic either decoder, the hardening checks (cached byte ∈ {0,1},
// class/batch_size within int32) hold, and decoded responses re-encode
// canonically.
func FuzzDecodeWireResults(f *testing.F) {
	f.Add([]byte{})
	f.Add(wireResultsSeed(f, []Result{{Class: 3, Scores: []float64{0.1, 0.2, 0.7}, BatchSize: 4}}))
	f.Add(wireResultsSeed(f, []Result{
		{Class: 0, Scores: []float64{math.NaN(), math.Inf(-1)}, Cached: true},
		{Class: 1, Scores: []float64{1, 2}, BatchSize: maxWireIntField},
	}))
	valid := wireResultsSeed(f, []Result{{Class: 1, Scores: []float64{0.5, 0.5}}})
	f.Add(valid[:5])
	f.Add(valid[:len(valid)-1])
	f.Add(append(valid, 0x00))
	bad := append([]byte(nil), valid...)
	bad[12+8] = 2 // cached flag other than 0/1
	f.Add(bad)
	bad = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bad[12:], 0x80000000) // class wraps negative on 32-bit
	f.Add(bad)
	hostile := make([]byte, 12)
	binary.LittleEndian.PutUint32(hostile[0:], wireRespMagic)
	binary.LittleEndian.PutUint32(hostile[4:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(hostile[8:], 0xFFFFFFFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch WireResultsScratch
		results, err := ParseWireResults(data, &scratch)
		if err != nil {
			return
		}
		if len(data) > MaxWireBytes {
			t.Fatalf("decoded a %d-byte response past the %d-byte bound", len(data), MaxWireBytes)
		}
		for i, r := range results {
			if r.Class < 0 || r.BatchSize < 0 {
				t.Fatalf("result %d decoded with negative field: class=%d batch=%d", i, r.Class, r.BatchSize)
			}
		}
		reenc, err := AppendWireResults(nil, results)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("response round trip changed bytes: %d in, %d out", len(data), len(reenc))
		}
		rd, err := DecodeWireResults(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("reader decoder rejected what the parser accepted: %v", err)
		}
		if len(rd) != len(results) {
			t.Fatalf("decoders disagree: %d vs %d results", len(rd), len(results))
		}
		for i := range rd {
			if rd[i].Class != results[i].Class || rd[i].BatchSize != results[i].BatchSize || rd[i].Cached != results[i].Cached {
				t.Fatalf("decoders disagree on result %d header", i)
			}
			for j := range rd[i].Scores {
				if math.Float64bits(rd[i].Scores[j]) != math.Float64bits(results[i].Scores[j]) {
					t.Fatalf("decoders disagree at result %d score %d", i, j)
				}
			}
		}
	})
}
