package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// testModel builds a small block-circulant network in the shape of the
// paper's Arch-1 (scaled down so the race-instrumented load test stays
// fast).
func testModel(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewNetwork(
		nn.NewCircDense(64, 32, 16, rng),
		nn.NewReLU(),
		nn.NewDense(32, 10, rng),
	)
}

// testInputs returns n distinct deterministic input vectors plus the
// reference prediction for each, computed on the unshared original model.
func testInputs(net *nn.Network, n, features int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(99))
	inputs := make([][]float64, n)
	want := make([]int, n)
	for i := range inputs {
		inputs[i] = make([]float64, features)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
		x := tensor.FromSlice(inputs[i], 1, features)
		want[i] = net.Predict(x)[0]
	}
	return inputs, want
}

// TestConcurrentLoad is the scheduler's contract test: N goroutines hammer
// the server, and every request must be answered exactly once, correctly,
// in a batch no larger than configured. Run under -race this also proves
// replicas and workspaces share no state.
func TestConcurrentLoad(t *testing.T) {
	net := testModel(1)
	const (
		goroutines = 8
		perG       = 40
		maxBatch   = 4
	)
	srv, err := New(Config{
		Model:    net,
		InShape:  []int{64},
		Workers:  4,
		MaxBatch: maxBatch,
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inputs, want := testInputs(net, 16, 64)
	var answered atomic.Uint64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g*perG + i) % len(inputs)
				res, err := srv.Infer(context.Background(), inputs[k])
				if err != nil {
					errCh <- err
					return
				}
				if res.Class != want[k] {
					t.Errorf("input %d: served class %d, reference %d", k, res.Class, want[k])
				}
				if res.BatchSize < 1 || res.BatchSize > maxBatch {
					t.Errorf("batch size %d outside [1, %d]", res.BatchSize, maxBatch)
				}
				answered.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	const total = goroutines * perG
	if got := answered.Load(); got != total {
		t.Fatalf("answered %d of %d requests", got, total)
	}
	st := srv.Stats()
	if st.Requests != total || st.Completed != total {
		t.Errorf("stats: requests=%d completed=%d, want %d each", st.Requests, st.Completed, total)
	}
	if st.MaxBatch > maxBatch {
		t.Errorf("stats: max batch %d exceeds configured %d", st.MaxBatch, maxBatch)
	}
	if st.Batches == 0 || st.MeanBatch < 1 {
		t.Errorf("stats: batches=%d meanBatch=%f", st.Batches, st.MeanBatch)
	}
}

// TestBatchDeadline checks that a lone request is not held hostage by a
// large MaxBatch: the deadline must flush it.
func TestBatchDeadline(t *testing.T) {
	srv, err := New(Config{
		Model:    testModel(2),
		InShape:  []int{64},
		Workers:  1,
		MaxBatch: 1024,
		MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	input := make([]float64, 64)
	start := time.Now()
	res, err := srv.Infer(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("lone request took %v; deadline flush did not fire", elapsed)
	}
	if res.BatchSize != 1 {
		t.Errorf("lone request served in batch of %d, want 1", res.BatchSize)
	}
}

// TestResultCache checks the LRU: repeats hit, distinct inputs miss, and
// capacity is enforced.
func TestResultCache(t *testing.T) {
	net := testModel(3)
	srv, err := New(Config{
		Model:     net,
		InShape:   []int{64},
		Workers:   1,
		MaxBatch:  4,
		MaxDelay:  time.Millisecond,
		CacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inputs, want := testInputs(net, 3, 64)
	first, err := srv.Infer(context.Background(), inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported Cached")
	}
	again, err := srv.Infer(context.Background(), inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	if again.Class != want[0] {
		t.Errorf("cached class %d, want %d", again.Class, want[0])
	}
	// Mutating the caller's copy must not corrupt the cache.
	again.Scores[again.Class] = -1e9
	third, err := srv.Infer(context.Background(), inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if third.Class != want[0] {
		t.Errorf("cache corrupted by caller mutation: class %d, want %d", third.Class, want[0])
	}

	// Overflow the 2-entry capacity; the oldest entry must be evicted.
	for _, in := range inputs[1:] {
		if _, err := srv.Infer(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, n := srv.cache.counters(); n > 2 {
		t.Errorf("cache holds %d entries, capacity 2", n)
	}
	st := srv.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Errorf("stats: hits=%d misses=%d, want both nonzero", st.CacheHits, st.CacheMisses)
	}
}

// TestStatsConsistentUnderLoad is the regression test for the /stats race:
// Stats used to assemble its cache figures from two separate lock
// acquisitions, so a snapshot taken while /infer traffic was moving the
// LRU could pair entry counts with hit/miss totals from different moments.
// Here several clients hammer Infer through a cache that sees both hits
// and misses while a reader polls Stats, and every snapshot must be
// internally consistent. CI runs this under -race.
func TestStatsConsistentUnderLoad(t *testing.T) {
	const clients, iters, distinct = 4, 150, 6
	net := testModel(11)
	srv, err := New(Config{
		Model:     net,
		InShape:   []int{64},
		Workers:   2,
		MaxBatch:  4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: distinct,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	inputs, _ := testInputs(net, distinct, 64)

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			st := srv.Stats()
			// Invariants that hold at every instant with no cancelled
			// submissions: requests are counted before their cache
			// lookup or admission, and Stats reads the cache before the
			// collector, so no cache counter can ever outrun Requests
			// in one snapshot.
			if st.Completed > st.Requests {
				t.Errorf("snapshot: completed %d > requests %d", st.Completed, st.Requests)
			}
			if st.CacheHits+st.CacheMisses > st.Requests {
				t.Errorf("snapshot: hits %d + misses %d > requests %d",
					st.CacheHits, st.CacheMisses, st.Requests)
			}
			if st.CacheEntries > distinct {
				t.Errorf("snapshot: %d cache entries, capacity %d", st.CacheEntries, distinct)
			}
			if st.MaxBatch > 4 {
				t.Errorf("snapshot: max batch %d > configured 4", st.MaxBatch)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := srv.Infer(context.Background(), inputs[(c+i)%distinct]); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()

	// At quiescence the books must balance exactly.
	st := srv.Stats()
	if st.Requests != clients*iters {
		t.Errorf("requests %d, want %d", st.Requests, clients*iters)
	}
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.CacheHits, st.CacheMisses, st.Requests)
	}
	if st.Completed != st.CacheMisses {
		t.Errorf("completed %d != misses %d (every miss runs the model exactly once)", st.Completed, st.CacheMisses)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits despite repeated inputs")
	}
}

// TestPassthroughModelScoresNotClobbered: a model of pure pass-through
// layers returns a view of the worker's reused input buffer from its
// forward pass; the zero-copy score fan-out must detect that aliasing and
// copy, or the next batch's input would rewrite scores the previous
// requester still holds.
func TestPassthroughModelScoresNotClobbered(t *testing.T) {
	srv, err := New(Config{
		Model:    nn.NewNetwork(nn.NewFlatten()),
		InShape:  []int{8},
		Workers:  1,
		MaxBatch: 2,
		MaxDelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in1 := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	in2 := []float64{9, 10, 11, 12, 13, 14, 15, 16}
	res1, err := srv.Infer(context.Background(), in1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Infer(context.Background(), in2); err != nil {
		t.Fatal(err)
	}
	for i, v := range in1 {
		if res1.Scores[i] != v {
			t.Fatalf("first result clobbered by second batch: scores %v, want %v", res1.Scores, in1)
		}
	}
}

// TestCloseSemantics checks Close idempotence and post-Close rejection —
// including for inputs the result cache could still answer.
func TestCloseSemantics(t *testing.T) {
	srv, err := New(Config{Model: testModel(4), InShape: []int{64}, Workers: 2, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Infer(context.Background(), make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	// The zero input is cached now, but a closed server must still refuse.
	if _, err := srv.Infer(context.Background(), make([]float64, 64)); err != ErrClosed {
		t.Errorf("Infer after Close: err=%v, want ErrClosed", err)
	}
}

// TestInputValidation checks shape errors and config errors are reported,
// not paniced.
func TestInputValidation(t *testing.T) {
	srv, err := New(Config{Model: testModel(5), InShape: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Infer(context.Background(), make([]float64, 63)); err == nil {
		t.Error("short input accepted")
	}

	if _, err := New(Config{InShape: []int{64}}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Model: testModel(6)}); err == nil {
		t.Error("missing input shape accepted")
	}
	// A shape the model rejects must surface as an error from the probe.
	if _, err := New(Config{Model: testModel(7), InShape: []int{63}}); err == nil {
		t.Error("mismatched input shape accepted")
	}
}

// TestContextCancellation checks that a cancelled context unblocks Infer.
func TestContextCancellation(t *testing.T) {
	srv, err := New(Config{Model: testModel(8), InShape: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Infer(ctx, make([]float64, 64)); err != context.Canceled {
		// The request may also have been served before the cancellation
		// was observed; only a hang is a failure, and a hang fails the
		// test by timeout. Accept either outcome.
		if err != nil {
			t.Errorf("unexpected error %v", err)
		}
	}
}

// TestServedMatchesReference runs every test input through the server and
// the original network and requires identical scores — batching and
// workspace reuse must not change the numerics.
func TestServedMatchesReference(t *testing.T) {
	net := testModel(9)
	srv, err := New(Config{
		Model:    net,
		InShape:  []int{64},
		Workers:  3,
		MaxBatch: 5,
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inputs, _ := testInputs(net, 8, 64)
	for k, in := range inputs {
		res, err := srv.Infer(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		ref := net.Forward(tensor.FromSlice(in, 1, 64), false).Row(0)
		for j := range ref {
			if res.Scores[j] != ref[j] {
				t.Fatalf("input %d class %d: served score %g, reference %g", k, j, res.Scores[j], ref[j])
			}
		}
	}
}
