package serve_test

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/serve"
)

// Example shows the serving subsystem end to end: build (or load) a
// trained network, stand up a batched server with a result cache, and
// answer requests. In production the model comes from a cmd/train bundle
// via the engine package; here a fresh Arch-1 keeps the example
// self-contained.
func Example() {
	model := nn.Arch1(rand.New(rand.NewSource(1)))

	srv, err := serve.New(serve.Config{
		Model:     model,
		InShape:   []int{256}, // Arch-1: 16×16 grey images, flattened
		Workers:   2,
		MaxBatch:  8,
		CacheSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	input := make([]float64, 256)
	for i := range input {
		input[i] = 0.5
	}
	res, err := srv.Infer(context.Background(), input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("classes: %d, cached: %v\n", len(res.Scores), res.Cached)

	// A repeated query is answered from the LRU cache.
	res, err = srv.Infer(context.Background(), input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeat cached: %v\n", res.Cached)
	// Output:
	// classes: 10, cached: false
	// repeat cached: true
}
