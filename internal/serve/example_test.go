package serve_test

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
)

// Example shows the serving subsystem end to end: adapt a trained network
// as a Model, stand up a batched server with a result cache, and answer
// requests. In production the model comes from a cmd/train bundle via
// engine.Engine.Model; here a fresh Arch-1 keeps the example
// self-contained.
func Example() {
	m, err := model.FromNetwork("mnist", "v1",
		nn.Arch1(rand.New(rand.NewSource(1))),
		[]int{256}) // Arch-1: 16×16 grey images, flattened
	if err != nil {
		panic(err)
	}

	srv, err := serve.NewModel(m, serve.Options{
		Workers:   2,
		MaxBatch:  8,
		CacheSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	input := make([]float64, 256)
	for i := range input {
		input[i] = 0.5
	}
	res, err := srv.Infer(context.Background(), input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("classes: %d, cached: %v\n", len(res.Scores), res.Cached)

	// A repeated query is answered from the LRU cache.
	res, err = srv.Infer(context.Background(), input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeat cached: %v\n", res.Cached)
	// Output:
	// classes: 10, cached: false
	// repeat cached: true
}

// ExampleRegistry shows the multi-model registry end to end: register two
// versions of a model, canary the new one behind a 90/10 weighted A/B
// split, then hot-swap it to latest and retire the old version — all while
// the registry keeps serving.
func ExampleRegistry() {
	reg := serve.NewRegistry(serve.Options{
		Workers:  2,
		MaxBatch: 8,
		MaxDelay: 100 * time.Microsecond,
	})
	defer reg.Close()

	// Two builds of the same model name. In production these come from
	// cmd/train bundles via engine.Engine.Model; fresh Arch-1 weights keep
	// the example self-contained.
	v1, err := model.FromNetwork("mnist", "v1", nn.Arch1(rand.New(rand.NewSource(1))), []int{256})
	if err != nil {
		panic(err)
	}
	v2, err := model.FromNetwork("mnist", "v2", nn.Arch1(rand.New(rand.NewSource(2))), []int{256})
	if err != nil {
		panic(err)
	}
	if err := reg.Register(v1); err != nil {
		panic(err)
	}
	if err := reg.Register(v2); err != nil {
		panic(err)
	}

	// Canary: 90% of routed traffic stays on v1, 10% tries v2. The split
	// is exact (smooth weighted round-robin), not sampled.
	if err := reg.SetWeights("mnist", map[string]float64{"v1": 0.9, "v2": 0.1}); err != nil {
		panic(err)
	}
	input := make([]float64, 256)
	for i := 0; i < 100; i++ {
		if _, err := reg.Infer(context.Background(), "mnist", "", input); err != nil {
			panic(err)
		}
	}
	s1, _ := reg.Stats("mnist", "v1")
	s2, _ := reg.Stats("mnist", "v2")
	fmt.Printf("canary split: v1=%d v2=%d\n", s1.Requests, s2.Requests)

	// Promote v2: clear the split (v2 is already latest — it registered
	// last) and retire v1. Routed traffic hot-swaps without an error.
	if err := reg.SetWeights("mnist", nil); err != nil {
		panic(err)
	}
	if err := reg.Retire("mnist", "v1"); err != nil {
		panic(err)
	}
	res, err := reg.Infer(context.Background(), "mnist", "", input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after swap: %d models, %d classes\n", len(reg.Models()), len(res.Scores))
	// Output:
	// canary split: v1=90 v2=10
	// after swap: 1 models, 10 classes
}
