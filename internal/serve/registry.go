package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/model"
)

// Registry errors. The HTTP layer maps ErrNotFound to 404; ErrExists only
// arises from library registration (no HTTP endpoint registers models).
var (
	// ErrNotFound is returned when no registered model matches the
	// requested name (or name@version).
	ErrNotFound = errors.New("serve: model not found")
	// ErrExists is returned by Register when the name@version identity is
	// already taken; register a new version instead of overwriting one.
	ErrExists = errors.New("serve: model version already registered")
)

// Latest is the version alias that resolves to a name's routed version:
// the A/B split when weights are set, otherwise the most recently
// registered (or explicitly promoted) version.
const Latest = "latest"

// Registry is the multi-model router: any number of versioned models, each
// behind its own Server (own batcher, replica pool and result cache), are
// served concurrently and addressed by "name@version" or by bare name
// through the "latest" alias. Registration, retirement and promotion are
// atomic with respect to routing, so models hot-swap under live traffic;
// an Infer addressed through the alias transparently re-resolves if its
// version retires mid-flight, so a hot swap never fails alias-addressed
// requests. A Registry is safe for use by any number of goroutines.
type Registry struct {
	opts Options

	mu      sync.RWMutex
	entries map[string]*entry   // name@version → serving instance
	latest  map[string]string   // name → version the alias points to
	routes  map[string]*abRoute // name → weighted A/B split, if configured
	seq     uint64              // registration order, for latest re-pointing
	closed  bool
}

// entry is one registered model version.
type entry struct {
	srv *Server
	seq uint64 // registration order
}

// abRoute is a smooth weighted round-robin over a name's versions: each
// pick advances every arm by its weight and takes the largest accumulator,
// then debits the total. Proportions are exact over any window (no
// sampling noise), which is what the routing-distribution tests pin.
type abRoute struct {
	mu   sync.Mutex
	arms []abArm
}

type abArm struct {
	version string
	weight  float64
	current float64
}

//repro:noalloc
func (r *abRoute) pick() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0.0
	best := 0
	for i := range r.arms {
		r.arms[i].current += r.arms[i].weight
		total += r.arms[i].weight
		if r.arms[i].current > r.arms[best].current {
			best = i
		}
	}
	r.arms[best].current -= total
	return r.arms[best].version
}

// weights returns the normalised weight per version.
func (r *abRoute) weights() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0.0
	for _, a := range r.arms {
		total += a.weight
	}
	out := make(map[string]float64, len(r.arms))
	for _, a := range r.arms {
		out[a.version] = a.weight / total
	}
	return out
}

// rawWeights returns the as-configured (unnormalised) weight per version.
func (r *abRoute) rawWeights() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.arms))
	for _, a := range r.arms {
		out[a.version] = a.weight
	}
	return out
}

// ModelInfo describes one registered model version — the /v1/models
// listing entry.
type ModelInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Latest reports whether the name's "latest" alias points here.
	Latest  bool  `json:"latest"`
	InDim   int   `json:"in_dim"`
	OutDim  int   `json:"out_dim"`
	InShape []int `json:"in_shape"`
	// Weight is this version's normalised share of the name's A/B split,
	// 0 when no split is configured.
	Weight float64 `json:"weight,omitempty"`
	Stats  Stats   `json:"stats"`
}

// NewRegistry returns an empty registry whose registered models are served
// with opts (per-model batcher, replica pool and cache instances; zero
// fields select the Server defaults).
func NewRegistry(opts Options) *Registry {
	return &Registry{
		opts:    opts,
		entries: make(map[string]*entry),
		latest:  make(map[string]string),
		routes:  make(map[string]*abRoute),
	}
}

// Register starts serving m under its name@version identity and points the
// name's "latest" alias at it. Registering an identity twice is ErrExists;
// hot-swapping a model means registering the new version and retiring the
// old one, both of which are safe under live traffic.
func (r *Registry) Register(m model.Model) error {
	return r.RegisterWith(m, r.opts)
}

// RegisterWith is Register with per-model serving options overriding the
// registry's defaults — the hook for configuration that cannot be shared
// across models, like a similarity cache whose Embed function is the
// model's own tapped trunk (Options.SimCache).
func (r *Registry) RegisterWith(m model.Model, opts Options) error {
	if m == nil {
		return errors.New("serve: nil model")
	}
	if err := model.ValidateName("name", m.Name()); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := model.ValidateName("version", m.Version()); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if m.Version() == Latest {
		// The resolver treats "latest" as the alias, so a model registered
		// under that literal version could never be addressed again once
		// another version existed.
		return fmt.Errorf("serve: version %q is reserved for the alias", Latest)
	}
	id := ModelID(m)

	// Pre-flight under the read path only: the server (replica pool,
	// scheduler goroutines) is built outside the lock so a slow model
	// replication never stalls routing.
	r.mu.RLock()
	closed := r.closed
	_, dup := r.entries[id]
	r.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	srv, err := NewModel(m, opts)
	if err != nil {
		return err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		srv.Close()
		return ErrClosed
	}
	if _, ok := r.entries[id]; ok {
		r.mu.Unlock()
		srv.Close()
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	r.seq++
	r.entries[id] = &entry{srv: srv, seq: r.seq}
	r.latest[m.Name()] = m.Version()
	r.mu.Unlock()
	return nil
}

// Retire atomically stops routing to name@version, re-points the "latest"
// alias to the most recently registered surviving version (or drops the
// name entirely when none remains), removes the version from any A/B
// split (dissolving a split left with fewer than two arms, so the name
// falls back to alias routing), and then drains the version's in-flight
// requests. Alias-addressed
// Infer calls racing the retirement re-resolve and land on a surviving
// version; only requests pinned to the retired version observe an error.
func (r *Registry) Retire(name, version string) error {
	id := model.ID(name, version)
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(r.entries, id)
	if r.latest[name] == version {
		// Re-point the alias at the newest surviving version of the name.
		var next string
		var nextSeq uint64
		for otherID, oe := range r.entries {
			n, v := model.ParseID(otherID)
			if n == name && oe.seq > nextSeq {
				next, nextSeq = v, oe.seq
			}
		}
		if next == "" {
			delete(r.latest, name)
		} else {
			r.latest[name] = next
		}
	}
	if route, ok := r.routes[name]; ok {
		route.mu.Lock()
		arms := route.arms[:0]
		for _, a := range route.arms {
			if a.version != version {
				arms = append(arms, a)
			}
		}
		route.arms = arms
		degenerate := len(arms) <= 1
		route.mu.Unlock()
		if degenerate {
			// A split needs at least two arms to split anything. Dropping
			// a single-arm remnant returns the name to alias routing —
			// otherwise the documented hot-swap sequence (Register new,
			// Retire old) would strand 100% of routed traffic on the
			// surviving canary arm while the alias points at the new
			// version.
			delete(r.routes, name)
		}
	}
	r.mu.Unlock()

	// Drain outside the lock: Close waits for in-flight batches, and
	// routing must not stall behind them.
	e.srv.Close()
	return nil
}

// Promote points name's "latest" alias at an already-registered version —
// an instant rollback/rollforward that moves no model data. Any A/B split
// on the name is cleared: routed traffic resolves through the split before
// the alias, so leaving the split in place would make the promotion a
// silent no-op for exactly the traffic it is meant to move.
func (r *Registry) Promote(name, version string) error {
	id := model.ID(name, version)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	r.latest[name] = version
	delete(r.routes, name)
	return nil
}

// SetWeights installs a weighted A/B split over name's versions: requests
// addressed to the bare name (or the "latest" alias) are routed across the
// given versions in exact proportion to their weights. Every version must
// be registered and every weight positive. A nil or empty map clears the
// split, returning the name to plain latest-alias routing.
func (r *Registry) SetWeights(name string, weights map[string]float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(weights) == 0 {
		delete(r.routes, name)
		return nil
	}
	route := &abRoute{arms: make([]abArm, 0, len(weights))}
	for version, w := range weights {
		// !(w > 0) also catches NaN, which would otherwise poison the
		// round-robin accumulators and route all traffic to one arm.
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("serve: weight %g for %s outside (0, +Inf)", w, model.ID(name, version))
		}
		if _, ok := r.entries[model.ID(name, version)]; !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, model.ID(name, version))
		}
		route.arms = append(route.arms, abArm{version: version, weight: w})
	}
	// Deterministic arm order so the smooth-WRR pick sequence is
	// reproducible for a given weight map.
	sort.Slice(route.arms, func(i, j int) bool { return route.arms[i].version < route.arms[j].version })
	r.routes[name] = route
	return nil
}

// Weights returns name's current A/B split exactly as configured — the
// raw, unnormalised weights passed to SetWeights — or nil when the name
// has no split. The canary controller snapshots this before installing
// its ramp so a rollback can restore the precise pre-canary state, not a
// normalised approximation of it.
func (r *Registry) Weights(name string) map[string]float64 {
	r.mu.RLock()
	route, ok := r.routes[name]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	return route.rawWeights()
}

// resolve maps (name, version) to the serving instance. An empty version
// or the "latest" alias routes: through the A/B split when one is
// configured, otherwise to the alias target.
//
//repro:noalloc
func (r *Registry) resolve(name, version string) (*Server, error) {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, ErrClosed
	}
	if version == "" || version == Latest {
		if route, ok := r.routes[name]; ok {
			version = route.pick()
		} else if v, ok := r.latest[name]; ok {
			version = v
		} else {
			r.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
	}
	//repro:lint-ignore noalloc the composite registry key is one small string per routed request
	e, ok := r.entries[model.ID(name, version)]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, model.ID(name, version))
	}
	return e.srv, nil
}

// Infer routes one request to the named model and blocks until it is
// answered. version "" (or "latest") selects the routed version — the A/B
// split when configured, the latest alias otherwise; a concrete version
// pins the request to that registered instance. A request that loses the
// race with a Retire (its resolved server closed before admission) simply
// re-resolves: alias-addressed traffic lands on a surviving version, so
// hot-swapping never surfaces errors to routed callers, while a pinned
// request finds its version gone and reports ErrNotFound — never the
// retired server's ErrClosed.
func (r *Registry) Infer(ctx context.Context, name, version string, input []float64) (Result, error) {
	return r.InferInto(ctx, name, version, input, nil)
}

// InferInto is Infer writing the result's scores into the caller-owned
// buffer scores (nil allocates): the allocation-free form for high-QPS
// callers that reuse one buffer per goroutine. See Server.InferInto for
// the buffer-ownership contract.
//
//repro:noalloc
func (r *Registry) InferInto(ctx context.Context, name, version string, input, scores []float64) (Result, error) {
	for {
		srv, err := r.resolve(name, version)
		if err != nil {
			return Result{}, err
		}
		res, err := srv.InferInto(ctx, input, scores)
		if errors.Is(err, ErrClosed) {
			// The resolved version retired between resolution and
			// admission. Re-resolve: Retire removes the entry before
			// closing its server, so a pinned version now yields
			// ErrNotFound and an alias yields a survivor; a closed
			// *registry* fails resolve above. Either way the loop exits.
			continue
		}
		return res, err
	}
}

// Stats returns the counters of one registered model version. An empty or
// "latest" version resolves through the alias (but never advances the A/B
// rotation — stats polling must not skew a measured split).
func (r *Registry) Stats(name, version string) (Stats, error) {
	r.mu.RLock()
	if version == "" || version == Latest {
		v, ok := r.latest[name]
		if !ok {
			r.mu.RUnlock()
			return Stats{}, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		version = v
	}
	e, ok := r.entries[model.ID(name, version)]
	r.mu.RUnlock()
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrNotFound, model.ID(name, version))
	}
	return e.srv.Stats(), nil
}

// Len returns the number of registered model versions. Unlike Models it
// takes no per-model stats snapshots, so it is cheap enough for liveness
// probes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Models lists every registered version, sorted by name then version — the
// /v1/models listing.
func (r *Registry) Models() []ModelInfo {
	r.mu.RLock()
	infos := make([]ModelInfo, 0, len(r.entries))
	for id, e := range r.entries {
		name, version := model.ParseID(id)
		m := e.srv.Model()
		info := ModelInfo{
			Name:    name,
			Version: version,
			Latest:  r.latest[name] == version,
			InDim:   m.InDim(),
			OutDim:  m.OutDim(),
			InShape: m.InShape(),
			Stats:   e.srv.Stats(),
		}
		if route, ok := r.routes[name]; ok {
			info.Weight = route.weights()[version]
		}
		infos = append(infos, info)
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Name != infos[j].Name {
			return infos[i].Name < infos[j].Name
		}
		return infos[i].Version < infos[j].Version
	})
	return infos
}

// Close retires every registered model and rejects further registrations
// and inferences with ErrClosed. Close is idempotent and waits for all
// in-flight requests to drain.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := make([]*entry, 0, len(r.entries))
	for id, e := range r.entries {
		entries = append(entries, e)
		delete(r.entries, id)
	}
	clear(r.latest)
	clear(r.routes)
	r.mu.Unlock()
	for _, e := range entries {
		e.srv.Close()
	}
}
