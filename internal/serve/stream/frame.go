// Package stream is wire v2: the RPS2 length-prefixed streaming protocol
// that carries the binary inference codec (internal/serve wire format v1)
// over persistent TCP connections. Where wire v1 rides one HTTP round
// trip per request, an RPS2 connection multiplexes many in-flight frames
// — each tagged with a client-chosen request id and a model route — so a
// single connection keeps the coalescing batch scheduler fed, responses
// complete out of order as batches finish, and a GOAWAY handshake drains
// pipelined work without dropping any of it during rolling model swaps.
//
// Frame layout (all integers little-endian):
//
//	magic   uint32  0x32535052 ("RPS2")
//	type    uint8   frame type (Frame* constants)
//	flags   uint8   reserved, must be 0
//	id      uint64  request id (client-chosen, echoed on the response)
//	length  uint32  payload bytes (≤ MaxFramePayload)
//	payload length bytes
//
// Payloads by type:
//
//	FrameRequest   routeLen uint16 | route | deadlineUS uint32 | wire-v1 request (RPI1)
//	FrameResponse  wire-v1 response (RPO1)
//	FrameStatus    code uint16 | retryAfterMS uint32 | msgLen uint16 | msg
//	FrameGoAway    empty
//
// route is a "name" or "name@version" model identifier; deadlineUS is the
// request's latency budget in microseconds from server receipt (0 = no
// deadline), which the batch scheduler uses to shed work already past its
// SLO. FrameStatus answers a request that was not executed — its code
// mirrors the HTTP mapping (400 malformed, 404 unknown model, 408
// deadline exceeded, 429 shed by admission control with a Retry-After
// hint, 503 server closing). FrameGoAway is the drain handshake: the
// server sends it to announce "finish what is in flight, start nothing
// new"; the client answers with its own GOAWAY once every pipelined
// response has arrived, and the connection closes with zero lost frames.
package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/serve"
)

// FrameMagic opens every RPS2 frame ("RPS2" little-endian).
const FrameMagic = 0x32535052

// Frame types.
const (
	// FrameRequest carries one routed wire-v1 inference request.
	FrameRequest = 1
	// FrameResponse carries the wire-v1 results for the id it echoes.
	FrameResponse = 2
	// FrameStatus answers a request without executing it (shed, unknown
	// route, malformed payload, ...).
	FrameStatus = 3
	// FrameGoAway is the drain handshake frame; its id is 0.
	FrameGoAway = 4
)

const (
	// frameHeaderLen is the fixed RPS2 frame header size.
	frameHeaderLen = 18
	// MaxFramePayload bounds one frame's payload: the wire codec's own
	// cap plus the request frame's route-and-deadline prefix.
	MaxFramePayload = serve.MaxWireBytes + 6 + MaxRouteLen
	// MaxRouteLen bounds the model route ("name@version") in a request
	// frame.
	MaxRouteLen = 256
	// MaxStatusMsgLen bounds a status frame's message.
	MaxStatusMsgLen = 1024
)

// Frame is one decoded RPS2 frame. Payload is owned by the Frame and
// reused across DecodeFrame calls — receivers copy what they keep.
type Frame struct {
	Type    uint8
	ID      uint64
	Payload []byte

	// hdr is the header read scratch. A local array would escape into the
	// io.ReadFull interface call and cost one heap allocation per frame;
	// living in the reused Frame it is allocated once per connection.
	hdr [frameHeaderLen]byte
}

// beginFrame appends an RPS2 frame header for (typ, id) to dst with a
// zero length field; finishFrame patches the length once the payload has
// been appended. The pair lets encoders build header and payload in one
// buffer without knowing the payload size up front.
//
//repro:noalloc
func beginFrame(dst []byte, typ uint8, id uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, FrameMagic)
	dst = append(dst, typ, 0)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	return dst
}

// finishFrame patches the length field of the frame begun at start.
//
//repro:noalloc
func finishFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start+14:], uint32(len(dst)-start-frameHeaderLen))
	return dst
}

// AppendFrame appends one complete RPS2 frame to dst.
//
//repro:noalloc
func AppendFrame(dst []byte, typ uint8, id uint64, payload []byte) ([]byte, error) {
	if typ < FrameRequest || typ > FrameGoAway {
		return dst, fmt.Errorf("stream: unknown frame type %d", typ)
	}
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("stream: frame payload of %d bytes exceeds %d", len(payload), MaxFramePayload)
	}
	start := len(dst)
	dst = beginFrame(dst, typ, id)
	dst = append(dst, payload...)
	return finishFrame(dst, start), nil
}

// DecodeFrame reads one RPS2 frame into f, reusing f.Payload's storage.
// Malformed headers — bad magic, unknown type, nonzero reserved flags, a
// length past MaxFramePayload — are errors; so is a truncated payload.
// The payload cap never grows past the header's (validated) length claim,
// so a hostile 4 GiB length field cannot make the decoder allocate it.
//
//repro:noalloc
func DecodeFrame(r io.Reader, f *Frame) error {
	hdr := f.hdr[:]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err // io.EOF between frames is a clean close
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != FrameMagic {
		return fmt.Errorf("stream: bad frame magic %#x (want \"RPS2\")", m)
	}
	typ := hdr[4]
	if typ < FrameRequest || typ > FrameGoAway {
		return fmt.Errorf("stream: unknown frame type %d", typ)
	}
	if hdr[5] != 0 {
		return fmt.Errorf("stream: reserved frame flags %#x (want 0)", hdr[5])
	}
	length := int(binary.LittleEndian.Uint32(hdr[14:]))
	if length > MaxFramePayload {
		return fmt.Errorf("stream: frame payload of %d bytes exceeds %d", length, MaxFramePayload)
	}
	f.Type = typ
	f.ID = binary.LittleEndian.Uint64(hdr[6:])
	if cap(f.Payload) < length {
		f.Payload = make([]byte, length)
	}
	f.Payload = f.Payload[:length]
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return fmt.Errorf("stream: frame payload truncated: %w", err)
	}
	return nil
}

// appendRequestPayload appends a request frame's payload: route prefix,
// deadline budget, then the encoded wire-v1 request.
//
//repro:noalloc
func appendRequestPayload(dst []byte, route string, deadline time.Duration, inputs [][]float64) ([]byte, error) {
	if route == "" || len(route) > MaxRouteLen {
		return dst, fmt.Errorf("stream: route length %d outside [1, %d]", len(route), MaxRouteLen)
	}
	us := int64(0)
	if deadline > 0 {
		us = deadline.Microseconds()
		if us <= 0 || us > int64(^uint32(0)) {
			return dst, fmt.Errorf("stream: deadline %v outside the uint32-microsecond range", deadline)
		}
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(route)))
	dst = append(dst, route...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(us))
	return serve.AppendWireRequest(dst, inputs)
}

// parseRequestPayload splits a request frame's payload into its route,
// deadline budget and embedded wire-v1 request bytes. The returned slices
// alias p.
//
//repro:noalloc
func parseRequestPayload(p []byte) (route []byte, deadline time.Duration, wire []byte, err error) {
	if len(p) < 2 {
		return nil, 0, nil, fmt.Errorf("stream: request payload truncated: %d bytes", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[0:]))
	if n < 1 || n > MaxRouteLen {
		return nil, 0, nil, fmt.Errorf("stream: route length %d outside [1, %d]", n, MaxRouteLen)
	}
	if len(p) < 2+n+4 {
		return nil, 0, nil, fmt.Errorf("stream: request payload truncated after route: %d bytes", len(p))
	}
	route = p[2 : 2+n]
	deadline = time.Duration(binary.LittleEndian.Uint32(p[2+n:])) * time.Microsecond
	wire = p[2+n+4:]
	return route, deadline, wire, nil
}

// appendStatusPayload appends a status frame's payload.
//
//repro:noalloc
func appendStatusPayload(dst []byte, code int, retryAfter time.Duration, msg string) []byte {
	if len(msg) > MaxStatusMsgLen {
		msg = msg[:MaxStatusMsgLen]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(code))
	ms := retryAfter.Milliseconds()
	if ms < 0 || ms > int64(^uint32(0)) {
		ms = 0
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ms))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// parseStatusPayload splits a status frame's payload. msg aliases p.
//
//repro:noalloc
func parseStatusPayload(p []byte) (code int, retryAfter time.Duration, msg []byte, err error) {
	if len(p) < 8 {
		return 0, 0, nil, fmt.Errorf("stream: status payload truncated: %d bytes", len(p))
	}
	code = int(binary.LittleEndian.Uint16(p[0:]))
	retryAfter = time.Duration(binary.LittleEndian.Uint32(p[2:])) * time.Millisecond
	n := int(binary.LittleEndian.Uint16(p[6:]))
	if n > MaxStatusMsgLen || len(p) != 8+n {
		return 0, 0, nil, fmt.Errorf("stream: status payload of %d bytes, header describes %d", len(p), 8+n)
	}
	return code, retryAfter, p[8:], nil
}
