package stream

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/tensor"
)

// newArch2Registry builds a registry serving Arch-2 (121 features, the
// smallest evaluation architecture) under mnist@v1.
func newArch2Registry(t testing.TB, opts serve.Options) (*serve.Registry, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(opts)
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 16)
	for i := range inputs {
		inputs[i] = make([]float64, 121)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	return reg, inputs
}

// startServer serves an RPS2 listener on loopback and returns a dialed
// client. Cleanup closes client, server and registry in drain order.
func startServer(t testing.TB, reg *serve.Registry, opts Options) (*Server, *Client) {
	t.Helper()
	srv := NewServer(reg, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		cl.Close(ctx)
		srv.Close()
		if err := <-serveDone; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
		reg.Close()
	})
	return srv, cl
}

// TestStreamRoundTrip pins the basic contract: responses match the
// in-process registry answers exactly, for single- and multi-input
// frames, through both the alias route and a pinned name@version.
func TestStreamRoundTrip(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 2, MaxBatch: 8})
	_, cl := startServer(t, reg, Options{})
	ctx := context.Background()

	want := make([]serve.Result, len(inputs))
	for i, in := range inputs {
		res, err := reg.Infer(ctx, "mnist", "v1", in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, route := range []string{"mnist", "mnist@v1", "mnist@latest"} {
		res, err := cl.Do(ctx, route, inputs[:1])
		if err != nil {
			t.Fatalf("route %q: %v", route, err)
		}
		if len(res) != 1 || res[0].Class != want[0].Class {
			t.Fatalf("route %q: class %d, want %d", route, res[0].Class, want[0].Class)
		}
	}

	res, err := cl.Do(ctx, "mnist", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(inputs) {
		t.Fatalf("%d results for %d inputs", len(res), len(inputs))
	}
	for i := range res {
		if res[i].Class != want[i].Class {
			t.Errorf("input %d: class %d, want %d", i, res[i].Class, want[i].Class)
		}
		for j := range res[i].Scores {
			if res[i].Scores[j] != want[i].Scores[j] {
				t.Fatalf("input %d score %d: %g != %g", i, j, res[i].Scores[j], want[i].Scores[j])
			}
		}
	}
}

// TestStreamStatusErrors pins the status-frame error mapping: unknown
// routes surface as serve.ErrNotFound through errors.Is, and wrong input
// sizes as a 400 StatusError.
func TestStreamStatusErrors(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 1, MaxBatch: 4})
	_, cl := startServer(t, reg, Options{})
	ctx := context.Background()

	if _, err := cl.Do(ctx, "nosuch", inputs[:1]); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("unknown route: %v, want ErrNotFound", err)
	}
	if _, err := cl.Do(ctx, "mnist@v9", inputs[:1]); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("unknown version: %v, want ErrNotFound", err)
	}
	var se *StatusError
	if _, err := cl.Do(ctx, "mnist", [][]float64{make([]float64, 7)}); !errors.As(err, &se) || se.Code != 400 {
		t.Errorf("wrong input size: %v, want 400 StatusError", err)
	}
	// The connection survives per-request errors.
	if _, err := cl.Do(ctx, "mnist", inputs[:1]); err != nil {
		t.Fatalf("after errors: %v", err)
	}
}

// TestStreamConcurrentPipelinedClients is the -race pipelining test: many
// goroutines multiplex one connection, responses complete out of order,
// and every one lands on the goroutine that asked for it.
func TestStreamConcurrentPipelinedClients(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 2, MaxBatch: 16, MaxDelay: 200 * time.Microsecond})
	_, cl := startServer(t, reg, Options{Window: 128, Handlers: 8})
	ctx := context.Background()

	want := make([]int, len(inputs))
	for i, in := range inputs {
		res, err := reg.Infer(ctx, "mnist", "", in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Class
	}

	const goroutines, iters = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var out []serve.Result
			for i := 0; i < iters; i++ {
				k := (g + i) % len(inputs)
				res, err := cl.DoInto(ctx, "mnist", inputs[k:k+1], out)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				out = res
				if res[0].Class != want[k] {
					t.Errorf("goroutine %d iter %d: class %d, want %d (response misrouted?)", g, i, res[0].Class, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStreamHotSwapMidStream drives alias and pinned traffic through one
// connection while the registry hot-swaps underneath — the PR 3 semantics
// must hold across the wire: alias-addressed frames never fail, pinned
// frames observe ErrNotFound (as a 404 status frame) only.
func TestStreamHotSwapMidStream(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 2, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	_, cl := startServer(t, reg, Options{Window: 128, Handlers: 8})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	net2 := nn.Arch2(rng)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var aliasOK, pinnedOK, pinnedGone atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (g + i) % len(inputs)
				if _, err := cl.Do(ctx, "mnist", inputs[k:k+1]); err != nil {
					t.Errorf("alias request failed during hot swap: %v", err)
					return
				}
				aliasOK.Add(1)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % len(inputs)
			_, err := cl.Do(ctx, "mnist@v1", inputs[k:k+1])
			switch {
			case err == nil:
				pinnedOK.Add(1)
			case errors.Is(err, serve.ErrNotFound):
				pinnedGone.Add(1)
			default:
				t.Errorf("pinned request: %v, want success or ErrNotFound", err)
				return
			}
		}
	}()

	// Hot-swap loop: register v2, retire v1, re-register v1, retire v2 —
	// the alias always has a live target.
	for cycle := 0; cycle < 5; cycle++ {
		m2, err := model.FromNetwork("mnist", "v2", net2, []int{121})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(m2); err != nil {
			t.Fatal(err)
		}
		if err := reg.Retire("mnist", "v1"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		m1, err := model.FromNetwork("mnist", "v1", nn.Arch2(rand.New(rand.NewSource(41))), []int{121})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(m1); err != nil {
			t.Fatal(err)
		}
		if err := reg.Retire("mnist", "v2"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if aliasOK.Load() == 0 {
		t.Error("no alias traffic completed")
	}
	if pinnedGone.Load() == 0 {
		t.Error("pinned traffic never observed the retirement (test too fast to race the swap?)")
	}
	t.Logf("alias ok=%d pinned ok=%d pinned gone=%d", aliasOK.Load(), pinnedOK.Load(), pinnedGone.Load())
}

// slowModel wraps a Model with a fixed per-batch delay, so drain tests
// reliably catch requests in flight.
type slowModel struct {
	model.Model
	delay time.Duration
}

func (m slowModel) Forward(ws *nn.Workspace, batch *tensor.Tensor) *tensor.Tensor {
	time.Sleep(m.delay)
	return m.Model.Forward(ws, batch)
}

func (m slowModel) Replicate() (model.Model, error) {
	r, err := m.Model.Replicate()
	if err != nil {
		return nil, err
	}
	return slowModel{Model: r, delay: m.delay}, nil
}

// TestStreamDrainCompletesInflight is the GOAWAY drain test: Shutdown
// arrives while a window of pipelined requests is in flight; every one of
// them must complete with a real response, new work must be refused, and
// the connection goroutines must all exit.
func TestStreamDrainCompletesInflight(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 2, MaxBatch: 4})
	if err := reg.Register(slowModel{Model: m, delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	before := runtime.NumGoroutine()
	srv := NewServer(reg, Options{Window: 64, Handlers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	input := make([]float64, 121)
	ctx := context.Background()
	const inflight = 32
	var wg sync.WaitGroup
	var completed atomic.Int64
	started := make(chan struct{}, inflight)
	for g := 0; g < inflight; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, err := cl.Do(ctx, "mnist", [][]float64{input}); err != nil {
				t.Errorf("in-flight request dropped by drain: %v", err)
				return
			}
			completed.Add(1)
		}()
	}
	for g := 0; g < inflight; g++ {
		<-started
	}
	// Shut down only once every frame is accepted server-side, so the drain
	// provably has the full window in flight to complete.
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().Frames < inflight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames accepted", srv.Stats().Frames, inflight)
		}
		time.Sleep(time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if got := completed.Load(); got != inflight {
		t.Errorf("%d of %d in-flight requests completed through the drain", got, inflight)
	}
	if !cl.GoingAway() {
		t.Error("client did not observe GOAWAY")
	}
	if _, err := cl.Do(ctx, "mnist", [][]float64{input}); !errors.Is(err, ErrGoingAway) {
		t.Errorf("post-drain Do: %v, want ErrGoingAway", err)
	}
	cl.Close(sctx)
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}

	// Goroutine-leak check: everything the server and connection spawned
	// must exit once drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked after drain: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamClientCloseDrains pins the client half of the handshake:
// Close waits for in-flight calls, sends GOAWAY, and the server answers
// everything before the socket dies.
func TestStreamClientCloseDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 4})
	if err := reg.Register(slowModel{Model: m, delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	srv, cl := startServer(t, reg, Options{})
	_ = srv

	input := make([]float64, 121)
	ctx := context.Background()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Do(ctx, "mnist", [][]float64{input}); err != nil {
				failed.Add(1)
			}
		}()
	}
	time.Sleep(time.Millisecond) // let most submissions hit the wire
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Close(cctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Errorf("%d in-flight requests failed during client-side drain", n)
	}
}

// TestStreamAdmissionShed pins typed shedding through the stream: past
// the admission caps, requests are answered with a 429 status frame that
// surfaces client-side as an *admission.OverloadError carrying the
// configured Retry-After hint.
func TestStreamAdmissionShed(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 1})
	if err := reg.Register(slowModel{Model: m, delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctrl := admission.New(admission.Config{MaxInflight: 2, RetryAfter: 25 * time.Millisecond})
	srv, cl := startServer(t, reg, Options{Window: 64, Handlers: 8, Admission: ctrl})

	input := make([]float64, 121)
	ctx := context.Background()
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := cl.Do(ctx, "mnist", [][]float64{input})
				var oe *admission.OverloadError
				switch {
				case err == nil:
					ok.Add(1)
				case errors.As(err, &oe):
					shed.Add(1)
					if oe.RetryAfter != 25*time.Millisecond {
						t.Errorf("shed RetryAfter = %v, want 25ms", oe.RetryAfter)
						return
					}
				default:
					t.Errorf("overload returned untyped error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no requests admitted")
	}
	if shed.Load() == 0 {
		t.Error("no requests shed despite MaxInflight=2 under 16-way load")
	}
	st := ctrl.Stats()
	if st.ShedInflight == 0 {
		t.Errorf("controller counted no inflight sheds: %+v", st)
	}
	if st.Inflight != 0 {
		t.Errorf("controller leaked %d inflight after quiesce", st.Inflight)
	}
	if s := srv.Stats(); s.Shed == 0 {
		t.Errorf("server stats counted no sheds: %+v", s)
	}
}

// TestStreamQuotaShed pins per-model quotas: a capped model sheds with
// reason "quota" while a sibling model is unaffected.
func TestStreamQuotaShed(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	mA, err := model.FromNetwork("capped", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := model.FromNetwork("open", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 2})
	if err := reg.Register(slowModel{Model: mA, delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(slowModel{Model: mB, delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctrl := admission.New(admission.Config{Quota: map[string]int{"capped": 1}})
	_, cl := startServer(t, reg, Options{Window: 64, Handlers: 8, Admission: ctrl})

	input := make([]float64, 121)
	ctx := context.Background()
	var wg sync.WaitGroup
	var quotaShed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := cl.Do(ctx, "capped", [][]float64{input})
				var oe *admission.OverloadError
				if errors.As(err, &oe) {
					if oe.Reason != admission.ReasonQuota {
						t.Errorf("shed reason %q, want %q", oe.Reason, admission.ReasonQuota)
						return
					}
					quotaShed.Add(1)
				} else if err != nil {
					t.Errorf("capped model: %v", err)
					return
				}
				if _, err := cl.Do(ctx, "open", [][]float64{input}); err != nil {
					t.Errorf("open model shed alongside capped quota: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if quotaShed.Load() == 0 {
		t.Error("quota of 1 never shed under 8-way load")
	}
	if st := ctrl.Stats(); st.ShedQuota == 0 {
		t.Errorf("controller counted no quota sheds: %+v", st)
	}
}

// TestStreamSLOShed pins deadline-aware batch scheduling end to end: with
// a server-side SLO shorter than the queueing delay a slow model builds,
// late requests are answered with the typed overload error (reason "slo")
// by the worker instead of being executed, and the serve.Stats Shed
// counter records them.
func TestStreamSLOShed(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 1, SLO: 3 * time.Millisecond})
	if err := reg.Register(slowModel{Model: m, delay: 4 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, reg, Options{Window: 64, Handlers: 8})

	input := make([]float64, 121)
	ctx := context.Background()
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				_, err := cl.Do(ctx, "mnist", [][]float64{input})
				var oe *admission.OverloadError
				switch {
				case err == nil:
					ok.Add(1)
				case errors.As(err, &oe) && oe.Reason == admission.ReasonSLO:
					shed.Add(1)
				default:
					t.Errorf("SLO shed surfaced as %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no requests completed")
	}
	if shed.Load() == 0 {
		t.Error("no requests shed past a 3ms SLO behind a 4ms/batch model under 8-way load")
	}
	st, err := reg.Stats("mnist", "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Errorf("serve.Stats.Shed = 0 after %d client-visible sheds", shed.Load())
	}
}
