//go:build race

package stream

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates and slows the closed loop;
// allocation gates and quantitative saturation assertions skip themselves
// when it is set (the CI zero-alloc gate and bench job run without -race).
const raceEnabled = true
