package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// Client errors.
var (
	// ErrGoingAway is returned by Do once the server has announced a
	// drain (GOAWAY): in-flight requests still complete, new ones must go
	// to another connection.
	ErrGoingAway = errors.New("stream: connection draining (GOAWAY received)")
	// ErrClientClosed is returned by Do after Close.
	ErrClientClosed = errors.New("stream: client closed")
)

// StatusError is a non-overload status frame surfaced as an error. Its
// Is method maps protocol codes back onto the serving sentinels, so
// errors.Is(err, serve.ErrNotFound) works across the wire exactly as it
// does in-process.
type StatusError struct {
	Code       int
	RetryAfter time.Duration
	Msg        string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("stream: status %d: %s", e.Code, e.Msg)
}

// Is maps status codes onto the in-process error identities.
func (e *StatusError) Is(target error) bool {
	switch e.Code {
	case 404:
		return target == serve.ErrNotFound
	case 503:
		return target == serve.ErrClosed
	case 408:
		return target == context.DeadlineExceeded
	}
	return false
}

// call is one in-flight request's rendezvous, pooled so the steady-state
// Do round trip allocates nothing. The reader parses the response into
// the call's own scratch before signalling done; Do copies outward and
// recycles. A call abandoned by context cancellation is NOT pooled — the
// reader may still be about to touch it (the buffered done channel makes
// that signal harmless on a dead call).
type call struct {
	done    chan struct{}
	scratch serve.WireResultsScratch
	results []serve.Result
	err     error
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

// Client is one RPS2 connection: any number of goroutines may Do on it
// concurrently, each request becomes one pipelined frame, and responses
// are matched back by id as they complete — out of order, as the server's
// batching dictates. Create one with Dial or NewClient.
type Client struct {
	nc net.Conn

	wmu  sync.Mutex
	wbuf []byte // frame encode scratch, under wmu

	mu       sync.Mutex
	calls    map[uint64]*call
	inflight int
	idle     chan struct{} // signalled when inflight drops to 0, for Close
	closed   bool

	nextID    atomic.Uint64
	goingAway atomic.Bool

	readDone chan struct{} // closed when the read loop exits
	readErr  error         // valid after readDone
	drained  chan struct{} // closed on the server's GOAWAY drain ack
}

// Dial connects an RPS2 client to addr over TCP.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient speaks RPS2 over an established connection (any net.Conn,
// including net.Pipe ends in tests) and starts its read loop.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:       nc,
		calls:    make(map[uint64]*call),
		idle:     make(chan struct{}, 1),
		readDone: make(chan struct{}),
		drained:  make(chan struct{}),
	}
	go c.read()
	return c
}

// GoingAway reports whether the server has announced a drain.
func (c *Client) GoingAway() bool { return c.goingAway.Load() }

// Do submits one routed request — route is "name" or "name@version",
// exactly the HTTP path's id — and blocks until its response frame
// arrives. If ctx carries a deadline, the remaining budget rides in the
// frame, so the server can shed the request once it is past the SLO
// instead of computing an answer nobody reads. Do is DoInto(..., nil).
func (c *Client) Do(ctx context.Context, route string, inputs [][]float64) ([]serve.Result, error) {
	return c.DoInto(ctx, route, inputs, nil)
}

// DoInto is Do appending the results into out's storage (out[i].Scores
// buffers are reused when their capacity suffices), the allocation-free
// form for a long-lived client goroutine reusing one results slice.
//
//repro:noalloc
func (c *Client) DoInto(ctx context.Context, route string, inputs [][]float64, out []serve.Result) ([]serve.Result, error) {
	if c.goingAway.Load() {
		return out, ErrGoingAway
	}
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return out, context.DeadlineExceeded
		}
	}

	cl := callPool.Get().(*call)
	cl.err = nil
	id := c.nextID.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		callPool.Put(cl)
		return out, ErrClientClosed
	}
	//repro:lint-ignore noalloc registering the pending call in the id map may grow it; the sync.Pool reuses call slots themselves
	c.calls[id] = cl
	c.inflight++
	c.mu.Unlock()

	c.wmu.Lock()
	start := 0
	c.wbuf = beginFrame(c.wbuf[:0], FrameRequest, id)
	var err error
	c.wbuf, err = appendRequestPayload(c.wbuf, route, budget, inputs)
	if err == nil {
		c.wbuf = finishFrame(c.wbuf, start)
		_, err = c.nc.Write(c.wbuf)
	}
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		callPool.Put(cl)
		return out, err
	}

	select {
	case <-cl.done:
		if cl.err != nil {
			err := cl.err
			c.finish(cl)
			return out, err
		}
		out = appendResults(out, cl.results)
		c.finish(cl)
		return out, nil
	case <-ctx.Done():
		// The response may race in at any moment; drop the call without
		// pooling it (see the call doc comment).
		c.forget(id)
		return out, ctx.Err()
	case <-c.readDone:
		c.forget(id)
		return out, c.readErr
	}
}

// finish recycles a completed call.
//
//repro:noalloc
func (c *Client) finish(cl *call) {
	c.decInflight()
	callPool.Put(cl)
}

// forget unregisters an abandoned or failed call id. The in-flight count
// is decremented unconditionally: every Do ends in exactly one of finish
// (response consumed) or forget, even when the reader claimed the call
// a moment before the abandoning context fired.
//
//repro:noalloc
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.inflight--
	if c.inflight == 0 {
		select {
		case c.idle <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
}

//repro:noalloc
func (c *Client) decInflight() {
	c.mu.Lock()
	c.inflight--
	if c.inflight == 0 {
		select {
		case c.idle <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
}

// appendResults copies parsed results into out, reusing out's backing
// storage and per-result score buffers where capacity allows.
//
//repro:noalloc
func appendResults(out, parsed []serve.Result) []serve.Result {
	n := len(parsed)
	for cap(out) < n {
		out = append(out[:cap(out)], serve.Result{})
	}
	out = out[:n]
	for i, r := range parsed {
		scores := append(out[i].Scores[:0], r.Scores...)
		out[i] = r
		out[i].Scores = scores
	}
	return out
}

// read is the response demultiplexer: one loop per connection matching
// response and status frames back to their waiting calls.
func (c *Client) read() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var f Frame
	for {
		if err := DecodeFrame(br, &f); err != nil {
			c.readErr = err
			c.mu.Lock()
			c.closed = true
			c.mu.Unlock()
			close(c.readDone)
			return
		}
		switch f.Type {
		case FrameGoAway:
			// Drain announcement or drain ack: either way no new work. A
			// server-initiated drain is answered automatically — once the
			// in-flight calls complete, the client sends its own GOAWAY so
			// the server can finish the handshake without waiting on an
			// explicit Close.
			if !c.goingAway.Swap(true) {
				close(c.drained)
				go c.ackGoAway()
			}
		case FrameResponse:
			cl := c.take(f.ID)
			if cl == nil {
				continue // abandoned call; drop the late response
			}
			cl.results, cl.err = serve.ParseWireResults(f.Payload, &cl.scratch)
			cl.done <- struct{}{}
		case FrameStatus:
			cl := c.take(f.ID)
			if cl == nil {
				continue
			}
			code, retryAfter, msg, err := parseStatusPayload(f.Payload)
			switch {
			case err != nil:
				cl.err = err
			case code == 429:
				cl.err = &admission.OverloadError{Reason: string(msg), RetryAfter: retryAfter}
			default:
				cl.err = &StatusError{Code: code, RetryAfter: retryAfter, Msg: string(msg)}
			}
			cl.done <- struct{}{}
		}
	}
}

// ackGoAway completes the client half of a server-initiated drain: wait
// for the in-flight calls to finish (goingAway already blocks new ones),
// then send GOAWAY so the server knows nothing else is coming. Marking
// the client closed under mu before writing makes the wait race-free
// against a Do that passed the goingAway fast-path but has not yet
// registered: it observes closed and fails instead of slipping a frame
// past the handshake.
func (c *Client) ackGoAway() {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return // Close owns the handshake from here
		}
		if c.inflight == 0 {
			c.closed = true
			c.mu.Unlock()
			c.wmu.Lock()
			c.wbuf, _ = AppendFrame(c.wbuf[:0], FrameGoAway, 0, nil)
			_, _ = c.nc.Write(c.wbuf) // best-effort: a failed GOAWAY surfaces in the read loop
			c.wmu.Unlock()
			return
		}
		c.mu.Unlock()
		select {
		case <-c.idle:
		case <-c.readDone:
			return
		}
	}
}

// take claims the call registered under id, if any. The in-flight count
// is decremented by the Do that receives the signal (or by forget), not
// here — the call is still in flight until its owner has the result.
func (c *Client) take(id uint64) *call {
	c.mu.Lock()
	cl := c.calls[id]
	if cl != nil {
		delete(c.calls, id)
	}
	c.mu.Unlock()
	return cl
}

// Close drains the connection: it waits for in-flight calls to complete
// (bounded by ctx), sends GOAWAY, and closes the socket. Calls made after
// Close fail with ErrClientClosed.
func (c *Client) Close(ctx context.Context) error {
	c.goingAway.Store(true) // fail-fast new Do calls
	for {
		c.mu.Lock()
		n := c.inflight
		c.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-c.idle:
		case <-ctx.Done():
			_ = c.nc.Close()
			<-c.readDone
			return ctx.Err()
		case <-c.readDone:
			// Connection already gone; nothing left to drain.
			_ = c.nc.Close()
			return c.readErr
		}
	}
	c.wmu.Lock()
	c.wbuf, _ = AppendFrame(c.wbuf[:0], FrameGoAway, 0, nil)
	_, _ = c.nc.Write(c.wbuf) // best-effort: the server may already be gone
	c.wmu.Unlock()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	// The server acks the drain with its own GOAWAY before closing; wait
	// for either the ack or the close so no response frame is cut off.
	select {
	case <-c.drained:
	case <-c.readDone:
	case <-ctx.Done():
	}
	err := c.nc.Close()
	<-c.readDone
	if errors.Is(c.readErr, net.ErrClosed) {
		return nil
	}
	_ = err
	return nil
}
