package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// Client errors.
var (
	// ErrGoingAway is returned by Do once the server has announced a
	// drain (GOAWAY): in-flight requests still complete, new ones must go
	// to another connection.
	ErrGoingAway = errors.New("stream: connection draining (GOAWAY received)")
	// ErrClientClosed is returned by Do after Close.
	ErrClientClosed = errors.New("stream: client closed")
	// ErrConnLost is the typed identity of a transport failure: every Do
	// that was in flight when the connection died fails with an error for
	// which errors.Is(err, ErrConnLost) is true, and a reconnecting
	// client (ClientOptions.Reconnect) fails fast with it while the
	// redial loop is still backing off. The response to an in-flight call
	// is gone with the connection — the caller decides whether the
	// request is safe to retry (the fleet router does, on a different
	// backend).
	ErrConnLost = errors.New("stream: connection lost")
)

// connLostError carries the transport error underneath the typed
// ErrConnLost identity. One instance is built per disconnect and shared
// by every call it failed.
type connLostError struct{ cause error }

func (e *connLostError) Error() string {
	return "stream: connection lost: " + e.cause.Error()
}
func (e *connLostError) Is(target error) bool { return target == ErrConnLost }
func (e *connLostError) Unwrap() error        { return e.cause }

// StatusError is a non-overload status frame surfaced as an error. Its
// Is method maps protocol codes back onto the serving sentinels, so
// errors.Is(err, serve.ErrNotFound) works across the wire exactly as it
// does in-process.
type StatusError struct {
	Code       int
	RetryAfter time.Duration
	Msg        string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("stream: status %d: %s", e.Code, e.Msg)
}

// Is maps status codes onto the in-process error identities.
func (e *StatusError) Is(target error) bool {
	switch e.Code {
	case 404:
		return target == serve.ErrNotFound
	case 503:
		return target == serve.ErrClosed
	case 408:
		return target == context.DeadlineExceeded
	}
	return false
}

// ClientOptions parameterises Dial behaviour beyond the defaults.
type ClientOptions struct {
	// Dial overrides the transport dialer — the seam the fault-injection
	// harness (internal/faultinject) and a future TLS wrap plug into.
	// nil dials plain TCP to the DialOptions address.
	Dial func() (net.Conn, error)
	// Reconnect opts into automatic redial: when the connection fails,
	// in-flight calls fail with a typed ErrConnLost error, and the
	// client redials with exponential backoff and jitter instead of
	// dying permanently. Calls made while the transport is down fail
	// fast with ErrConnLost. A server GOAWAY drain followed by a
	// connection close also redials — the rolling-restart shape, where
	// the backend comes back on the same address.
	Reconnect bool
	// ReconnectMin is the initial redial backoff (default 5ms); each
	// failed redial doubles it up to ReconnectMax (default 1s), and each
	// wait is jittered ±50% so a fleet of clients does not thunder back
	// in lockstep.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 5 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = time.Second
	}
	return o
}

// call is one in-flight request's rendezvous, pooled so the steady-state
// Do round trip allocates nothing. The reader parses the response into
// the call's own scratch before signalling done; Do copies outward and
// recycles. A call abandoned by context cancellation is NOT pooled — the
// reader may still be about to touch it (the buffered done channel makes
// that signal harmless on a dead call).
type call struct {
	done    chan struct{}
	scratch serve.WireResultsScratch
	results []serve.Result
	err     error
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

// Client is one RPS2 connection: any number of goroutines may Do on it
// concurrently, each request becomes one pipelined frame, and responses
// are matched back by id as they complete — out of order, as the server's
// batching dictates. Create one with Dial, DialOptions or NewClient.
type Client struct {
	opts ClientOptions

	// nc is the current transport. It is written at construction and —
	// for a reconnecting client — replaced by the redial loop while
	// holding both mu and wmu; every reader holds one of the two.
	nc net.Conn

	wmu  sync.Mutex
	wbuf []byte // frame encode scratch, under wmu

	mu       sync.Mutex
	calls    map[uint64]*call
	inflight int
	idle     chan struct{} // signalled when inflight drops to 0, for Close
	closed   bool
	drained  chan struct{} // closed on the server's GOAWAY drain ack; fresh per connection

	nextID    atomic.Uint64
	goingAway atomic.Bool
	down      atomic.Bool   // reconnecting client with no live transport
	gen       atomic.Uint64 // connection generation, bumped per redial
	dials     atomic.Uint64 // transports established

	shutdown chan struct{} // closed by Close, wakes the redial backoff

	readDone chan struct{} // closed when the read loop exits for good
	readErr  error         // valid after readDone
}

// Dial connects an RPS2 client to addr over TCP.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions is Dial with explicit options: a transport dial hook
// and/or opt-in reconnect. The initial dial failing is returned
// directly — reconnection only spans the life of an established client.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	if opts.Dial == nil {
		opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	nc, err := opts.Dial()
	if err != nil {
		return nil, err
	}
	return newClient(nc, opts), nil
}

// NewClient speaks RPS2 over an established connection (any net.Conn,
// including net.Pipe ends in tests) and starts its read loop. A client
// built this way has no dialer, so it cannot reconnect.
func NewClient(nc net.Conn) *Client {
	return newClient(nc, ClientOptions{}.withDefaults())
}

func newClient(nc net.Conn, opts ClientOptions) *Client {
	c := &Client{
		opts:     opts,
		nc:       nc,
		calls:    make(map[uint64]*call),
		idle:     make(chan struct{}, 1),
		drained:  make(chan struct{}),
		shutdown: make(chan struct{}),
		readDone: make(chan struct{}),
	}
	c.gen.Store(1)
	c.dials.Store(1)
	go c.read()
	return c
}

// GoingAway reports whether the server has announced a drain.
func (c *Client) GoingAway() bool { return c.goingAway.Load() }

// Down reports whether a reconnecting client currently has no live
// transport (the redial loop is backing off). Calls fail fast with
// ErrConnLost while down.
//
//repro:noalloc
func (c *Client) Down() bool { return c.down.Load() }

// Dials reports how many transport connections the client has
// established — 1 until the first reconnect.
func (c *Client) Dials() uint64 { return c.dials.Load() }

// Do submits one routed request — route is "name" or "name@version",
// exactly the HTTP path's id — and blocks until its response frame
// arrives. If ctx carries a deadline, the remaining budget rides in the
// frame, so the server can shed the request once it is past the SLO
// instead of computing an answer nobody reads. Do is DoInto(..., nil).
func (c *Client) Do(ctx context.Context, route string, inputs [][]float64) ([]serve.Result, error) {
	return c.DoInto(ctx, route, inputs, nil)
}

// DoInto is Do appending the results into out's storage (out[i].Scores
// buffers are reused when their capacity suffices), the allocation-free
// form for a long-lived client goroutine reusing one results slice.
//
//repro:noalloc
func (c *Client) DoInto(ctx context.Context, route string, inputs [][]float64, out []serve.Result) ([]serve.Result, error) {
	if c.goingAway.Load() {
		return out, ErrGoingAway
	}
	if c.down.Load() {
		return out, ErrConnLost
	}
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return out, context.DeadlineExceeded
		}
	}

	cl := callPool.Get().(*call)
	cl.err = nil
	id := c.nextID.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		callPool.Put(cl)
		return out, ErrClientClosed
	}
	//repro:lint-ignore noalloc registering the pending call in the id map may grow it; the sync.Pool reuses call slots themselves
	c.calls[id] = cl
	c.inflight++
	c.mu.Unlock()

	c.wmu.Lock()
	start := 0
	c.wbuf = beginFrame(c.wbuf[:0], FrameRequest, id)
	var err error
	c.wbuf, err = appendRequestPayload(c.wbuf, route, budget, inputs)
	if err == nil {
		c.wbuf = finishFrame(c.wbuf, start)
		if _, werr := c.nc.Write(c.wbuf); werr != nil {
			// A failed frame write IS a lost connection; give it the
			// typed identity retry policies key on.
			err = &connLostError{cause: werr}
		}
	}
	c.wmu.Unlock()
	if err != nil {
		// The reader may have raced us: a connection failure between
		// registering the call and the write error runs failInflight,
		// which claims the call and signals done. Pooling a call with
		// that signal still pending would poison the pool, so claim it
		// back under mu — and if the reader won, drain its signal (and
		// prefer its typed error) before recycling.
		c.mu.Lock()
		_, mine := c.calls[id]
		delete(c.calls, id)
		c.mu.Unlock()
		if !mine {
			<-cl.done
			if cl.err != nil {
				err = cl.err
			}
		}
		c.decInflight()
		callPool.Put(cl)
		return out, err
	}

	select {
	case <-cl.done:
		if cl.err != nil {
			err := cl.err
			c.finish(cl)
			return out, err
		}
		out = appendResults(out, cl.results)
		c.finish(cl)
		return out, nil
	case <-ctx.Done():
		// The response may race in at any moment; drop the call without
		// pooling it (see the call doc comment).
		c.forget(id)
		return out, ctx.Err()
	case <-c.readDone:
		c.forget(id)
		return out, c.readErr
	}
}

// finish recycles a completed call.
//
//repro:noalloc
func (c *Client) finish(cl *call) {
	c.decInflight()
	callPool.Put(cl)
}

// forget unregisters an abandoned or failed call id. The in-flight count
// is decremented unconditionally: every Do ends in exactly one of finish
// (response consumed) or forget, even when the reader claimed the call
// a moment before the abandoning context fired.
//
//repro:noalloc
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.inflight--
	if c.inflight == 0 {
		select {
		case c.idle <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
}

//repro:noalloc
func (c *Client) decInflight() {
	c.mu.Lock()
	c.inflight--
	if c.inflight == 0 {
		select {
		case c.idle <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
}

// appendResults copies parsed results into out, reusing out's backing
// storage and per-result score buffers where capacity allows.
//
//repro:noalloc
func appendResults(out, parsed []serve.Result) []serve.Result {
	n := len(parsed)
	for cap(out) < n {
		out = append(out[:cap(out)], serve.Result{})
	}
	out = out[:n]
	for i, r := range parsed {
		scores := append(out[i].Scores[:0], r.Scores...)
		out[i] = r
		out[i].Scores = scores
	}
	return out
}

// read owns the connection lifecycle end to end: it demultiplexes one
// transport until that fails, and — for a reconnecting client — fails
// the in-flight calls with the typed ErrConnLost, redials with backoff,
// and resumes on the fresh transport. It exits (closing readDone) when
// the client is closed or, without Reconnect, on the first transport
// failure.
func (c *Client) read() {
	var rng *rand.Rand // lazily built; jitter only matters when redialing
	for {
		err := c.readConn()
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || !c.opts.Reconnect {
			c.readErr = err
			c.mu.Lock()
			c.closed = true
			c.mu.Unlock()
			close(c.readDone)
			return
		}
		c.down.Store(true)
		c.failInflight(err)
		if rng == nil {
			rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		if !c.redial(rng) {
			c.readErr = ErrClientClosed
			c.mu.Lock()
			c.closed = true
			c.mu.Unlock()
			close(c.readDone)
			return
		}
	}
}

// readConn demultiplexes the current transport until it fails, returning
// the transport error.
func (c *Client) readConn() error {
	gen := c.gen.Load()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var f Frame
	for {
		if err := DecodeFrame(br, &f); err != nil {
			return err
		}
		switch f.Type {
		case FrameGoAway:
			// Drain announcement or drain ack: either way no new work. A
			// server-initiated drain is answered automatically — once the
			// in-flight calls complete, the client sends its own GOAWAY so
			// the server can finish the handshake without waiting on an
			// explicit Close.
			if !c.goingAway.Swap(true) {
				c.mu.Lock()
				drained := c.drained
				c.mu.Unlock()
				close(drained)
				go c.ackGoAway(gen)
			}
		case FrameResponse:
			cl := c.take(f.ID)
			if cl == nil {
				continue // abandoned call; drop the late response
			}
			cl.results, cl.err = serve.ParseWireResults(f.Payload, &cl.scratch)
			cl.done <- struct{}{}
		case FrameStatus:
			cl := c.take(f.ID)
			if cl == nil {
				continue
			}
			code, retryAfter, msg, err := parseStatusPayload(f.Payload)
			switch {
			case err != nil:
				cl.err = err
			case code == 429:
				cl.err = &admission.OverloadError{Reason: string(msg), RetryAfter: retryAfter}
			default:
				cl.err = &StatusError{Code: code, RetryAfter: retryAfter, Msg: string(msg)}
			}
			cl.done <- struct{}{}
		}
	}
}

// failInflight answers every registered call with the typed conn-lost
// error; their waiting Dos wake through the normal done path and release
// the in-flight accounting themselves.
func (c *Client) failInflight(cause error) {
	lost := &connLostError{cause: cause}
	c.mu.Lock()
	failed := make([]*call, 0, len(c.calls))
	for id, cl := range c.calls {
		delete(c.calls, id)
		cl.err = lost
		failed = append(failed, cl)
	}
	c.mu.Unlock()
	// Signal outside mu: a Do racing a failed write may need mu to claim
	// its call back before it consumes this signal.
	for _, cl := range failed {
		cl.done <- struct{}{}
	}
}

// redial re-establishes the transport with exponential backoff and
// ±50% jitter, returning false when the client was closed instead.
func (c *Client) redial(rng *rand.Rand) bool {
	backoff := c.opts.ReconnectMin
	for {
		select {
		case <-c.shutdown:
			return false
		default:
		}
		nc, err := c.opts.Dial()
		if err == nil {
			// Install the fresh transport under both locks so no writer
			// or GOAWAY acker can touch a half-swapped connection, and
			// reset the per-connection drain state.
			c.wmu.Lock()
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				c.wmu.Unlock()
				_ = nc.Close()
				return false
			}
			c.nc = nc
			c.drained = make(chan struct{})
			c.gen.Add(1)
			c.dials.Add(1)
			c.goingAway.Store(false)
			c.down.Store(false)
			c.mu.Unlock()
			c.wmu.Unlock()
			return true
		}
		// Jittered exponential backoff: wait backoff ± 50%.
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		select {
		case <-c.shutdown:
			return false
		case <-time.After(wait):
		}
		backoff *= 2
		if backoff > c.opts.ReconnectMax {
			backoff = c.opts.ReconnectMax
		}
	}
}

// ackGoAway completes the client half of a server-initiated drain: wait
// for the in-flight calls to finish (goingAway already blocks new ones),
// then send GOAWAY so the server knows nothing else is coming. In
// non-reconnect mode, marking the client closed under mu before writing
// makes the wait race-free against a Do that passed the goingAway
// fast-path but has not yet registered: it observes closed and fails
// instead of slipping a frame past the handshake. A reconnecting client
// stays open — the redial loop resets the drain state once the server
// closes the drained connection — so it marks itself down instead. The
// generation guard keeps a stale acker (its connection already replaced)
// from touching the successor transport.
func (c *Client) ackGoAway(gen uint64) {
	for {
		if c.gen.Load() != gen {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return // Close owns the handshake from here
		}
		if c.inflight == 0 {
			if c.opts.Reconnect {
				c.down.Store(true)
			} else {
				c.closed = true
			}
			c.mu.Unlock()
			c.wmu.Lock()
			if c.gen.Load() == gen {
				c.wbuf, _ = AppendFrame(c.wbuf[:0], FrameGoAway, 0, nil)
				_, _ = c.nc.Write(c.wbuf) // best-effort: a failed GOAWAY surfaces in the read loop
			}
			c.wmu.Unlock()
			return
		}
		c.mu.Unlock()
		select {
		case <-c.idle:
		case <-c.readDone:
			return
		case <-c.shutdown:
			return
		}
	}
}

// take claims the call registered under id, if any. The in-flight count
// is decremented by the Do that receives the signal (or by forget), not
// here — the call is still in flight until its owner has the result.
func (c *Client) take(id uint64) *call {
	c.mu.Lock()
	cl := c.calls[id]
	if cl != nil {
		delete(c.calls, id)
	}
	c.mu.Unlock()
	return cl
}

// closeShutdown closes the shutdown channel once.
func (c *Client) closeShutdown() {
	c.mu.Lock()
	select {
	case <-c.shutdown:
	default:
		close(c.shutdown)
	}
	c.mu.Unlock()
}

// conn returns the current transport under the write lock.
func (c *Client) conn() net.Conn {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.nc
}

// Close drains the connection: it waits for in-flight calls to complete
// (bounded by ctx), sends GOAWAY, and closes the socket. Calls made after
// Close fail with ErrClientClosed.
func (c *Client) Close(ctx context.Context) error {
	c.goingAway.Store(true) // fail-fast new Do calls
	c.closeShutdown()       // stop any redial backoff
	for {
		c.mu.Lock()
		n := c.inflight
		c.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-c.idle:
		case <-ctx.Done():
			_ = c.conn().Close()
			<-c.readDone
			return ctx.Err()
		case <-c.readDone:
			// Connection already gone; nothing left to drain.
			_ = c.conn().Close()
			return c.readErr
		}
	}
	c.wmu.Lock()
	c.wbuf, _ = AppendFrame(c.wbuf[:0], FrameGoAway, 0, nil)
	_, _ = c.nc.Write(c.wbuf) // best-effort: the server may already be gone
	c.wmu.Unlock()
	c.mu.Lock()
	c.closed = true
	drained := c.drained
	c.mu.Unlock()
	// The server acks the drain with its own GOAWAY before closing; wait
	// for either the ack or the close so no response frame is cut off.
	select {
	case <-drained:
	case <-c.readDone:
	case <-ctx.Done():
	}
	err := c.conn().Close()
	<-c.readDone
	if errors.Is(c.readErr, net.ErrClosed) {
		return nil
	}
	_ = err
	return nil
}
