package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/serve"
)

func frameSeed(t testing.TB, typ uint8, id uint64, payload []byte) []byte {
	t.Helper()
	b, err := AppendFrame(nil, typ, id, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzDecodeStreamFrame drives the RPS2 frame decoder and both payload
// parsers with arbitrary bytes: nothing may panic, a hostile length field
// must not make the decoder allocate past MaxFramePayload, and whatever
// decodes must re-encode to the identical consumed bytes (the framing is
// canonical).
func FuzzDecodeStreamFrame(f *testing.F) {
	f.Add([]byte{})
	req, err := appendRequestPayload(nil, "mnist@v1", 50*time.Millisecond, [][]float64{{1, 2, 3}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frameSeed(f, FrameRequest, 7, req))
	resp, err := serve.AppendWireResults(nil, []serve.Result{{Class: 2, Scores: []float64{0.1, 0.9}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frameSeed(f, FrameResponse, 7, resp))
	f.Add(frameSeed(f, FrameStatus, 9, appendStatusPayload(nil, 429, 25*time.Millisecond, "inflight")))
	f.Add(frameSeed(f, FrameGoAway, 0, nil))
	valid := frameSeed(f, FrameRequest, 1, req)
	f.Add(valid[:10])              // truncated header
	f.Add(valid[:len(valid)-2])    // truncated payload
	f.Add(append(valid, valid...)) // two frames back to back
	bad := append([]byte(nil), valid...)
	bad[5] = 0x80 // reserved flags set
	f.Add(bad)
	bad = append([]byte(nil), valid...)
	bad[4] = 9 // unknown type
	f.Add(bad)
	hostile := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hostile[0:], FrameMagic)
	hostile[4] = FrameRequest
	binary.LittleEndian.PutUint32(hostile[14:], 0xFFFFFFFF) // 4 GiB length claim
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var fr Frame
		if err := DecodeFrame(r, &fr); err != nil {
			return
		}
		if len(fr.Payload) > MaxFramePayload {
			t.Fatalf("decoded a %d-byte payload past the %d-byte bound", len(fr.Payload), MaxFramePayload)
		}
		consumed := len(data) - r.Len()
		reenc, err := AppendFrame(nil, fr.Type, fr.ID, fr.Payload)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data[:consumed]) {
			t.Fatalf("frame round trip changed bytes: consumed %d, re-encoded %d", consumed, len(reenc))
		}

		// The payload parsers see every frame the reader loops hand them;
		// they must be as total as the frame decoder itself.
		switch fr.Type {
		case FrameRequest:
			route, deadline, wire, err := parseRequestPayload(fr.Payload)
			if err != nil {
				return
			}
			if len(route) < 1 || len(route) > MaxRouteLen {
				t.Fatalf("parsed route length %d outside [1, %d]", len(route), MaxRouteLen)
			}
			if 2+len(route)+4+len(wire) != len(fr.Payload) {
				t.Fatalf("request payload split loses bytes: %d+%d of %d", len(route), len(wire), len(fr.Payload))
			}
			var scratch serve.WireRequestScratch
			inputs, err := serve.ParseWireRequest(wire, &scratch)
			if err != nil {
				return
			}
			rp, err := appendRequestPayload(nil, string(route), deadline, inputs)
			if err != nil {
				t.Fatalf("parsed request payload does not re-encode: %v", err)
			}
			if !bytes.Equal(rp, fr.Payload) {
				t.Fatal("request payload round trip changed bytes")
			}
		case FrameStatus:
			code, retryAfter, msg, err := parseStatusPayload(fr.Payload)
			if err != nil {
				return
			}
			if len(msg) > MaxStatusMsgLen {
				t.Fatalf("parsed status message of %d bytes past the %d-byte bound", len(msg), MaxStatusMsgLen)
			}
			sp := appendStatusPayload(nil, code, retryAfter, string(msg))
			if !bytes.Equal(sp, fr.Payload) {
				t.Fatal("status payload round trip changed bytes")
			}
		}
	})
}
