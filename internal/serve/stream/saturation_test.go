package stream

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// saturationLevel is one offered-load step of the overload sweep.
type saturationLevel struct {
	clients   int
	completed int64
	shed      int64
	p50, p99  time.Duration
	reqPerSec float64
}

// runSaturationLevel drives `clients` closed-loop pipelined goroutines
// over one connection for `dur` and collects completion latencies and
// typed shed counts. Any error that is not an *admission.OverloadError
// fails the test — overload must never surface as an untyped failure.
func runSaturationLevel(t testing.TB, cl *Client, inputs [][]float64, clients int, dur time.Duration) saturationLevel {
	t.Helper()
	ctx := context.Background()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		shed      atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var out []serve.Result
			local := make([]time.Duration, 0, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					latencies = append(latencies, local...)
					mu.Unlock()
					return
				default:
				}
				k := (g + i) % len(inputs)
				begin := time.Now()
				res, err := cl.DoInto(ctx, "mnist", inputs[k:k+1], out)
				var oe *admission.OverloadError
				switch {
				case err == nil:
					out = res
					local = append(local, time.Since(begin))
				case errors.As(err, &oe):
					shed.Add(1)
					// Honour a fraction of the hint so the shed loop does
					// not spin the CPU the workers need.
					time.Sleep(oe.RetryAfter / 10)
				default:
					t.Errorf("client %d: untyped error under load: %v", g, err)
					return
				}
			}
		}(g)
	}
	begin := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(begin)

	lv := saturationLevel{clients: clients, completed: int64(len(latencies)), shed: shed.Load()}
	lv.reqPerSec = float64(lv.completed) / elapsed.Seconds()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		lv.p50 = latencies[len(latencies)/2]
		lv.p99 = latencies[len(latencies)*99/100]
	}
	return lv
}

// TestStreamSaturation drives the streaming stack past its admission
// capacity — roughly 1×, 2× and 10× the sustainable concurrency — and
// pins the overload contract: excess load is answered with typed 429
// sheds (never untyped errors or unbounded queueing), the latency of the
// traffic that IS admitted stays bounded because admission caps the queue
// ahead of it, throughput does not collapse under 10× overload, and after
// a full drain no goroutine survives.
func TestStreamSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is a multi-second soak")
	}
	rng := rand.New(rand.NewSource(51))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	reg := serve.NewRegistry(serve.Options{
		Workers:  2,
		MaxBatch: 16,
		MaxDelay: 200 * time.Microsecond,
		SLO:      50 * time.Millisecond,
	})
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	// MaxInflight 8 ≈ the sustainable closed-loop concurrency for two
	// workers; the 1× level stays under it, 10× slams into it.
	ctrl := admission.New(admission.Config{MaxInflight: 8, RetryAfter: 5 * time.Millisecond})
	srv := NewServer(reg, Options{Window: 64, Handlers: 8, Admission: ctrl})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	inputs := make([][]float64, 16)
	for i := range inputs {
		inputs[i] = make([]float64, 121)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}

	const base = 4 // ≈1× of the admission cap with headroom
	levels := make([]saturationLevel, 0, 3)
	for _, mult := range []int{1, 2, 10} {
		levels = append(levels, runSaturationLevel(t, cl, inputs, base*mult, 300*time.Millisecond))
	}
	for _, lv := range levels {
		t.Logf("clients=%2d completed=%6d shed=%6d req/s=%9.0f p50=%v p99=%v",
			lv.clients, lv.completed, lv.shed, lv.reqPerSec, lv.p50, lv.p99)
	}

	// Teardown before the quantitative asserts so a failed assert still
	// reports the goroutine-leak check.
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Close(cctx); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Shutdown(cctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve: %v", err)
	}
	reg.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked after drain: %d before, %d after", before, n)
	}

	if levels[0].completed == 0 {
		t.Fatal("no traffic completed at 1× load")
	}
	if levels[2].shed == 0 {
		t.Error("no typed sheds at 10× the admission cap")
	}
	if st := ctrl.Stats(); st.ShedInflight == 0 {
		t.Errorf("controller counted no inflight sheds across the sweep: %+v", st)
	}
	if raceEnabled {
		// The detector's instrumentation skews latency and throughput by
		// integer factors; the structural asserts above still ran.
		return
	}
	// Overload must not collapse completed throughput: the 10× level keeps
	// at least 30% of the 1× level's rate (in practice it exceeds it — the
	// extra clients keep batches full — but CI hosts are noisy).
	if floor := 0.3 * levels[0].reqPerSec; levels[2].reqPerSec < floor {
		t.Errorf("throughput collapsed under 10× load: %.0f req/s, floor %.0f", levels[2].reqPerSec, floor)
	}
	// Admitted-traffic latency stays bounded by the queue the admission
	// cap allows, not by the offered load: p99 within 10× the 50ms SLO
	// even at 10× overload (the bound is deliberately loose — CI hosts
	// stall — while still catching unbounded-queue regressions, which
	// produce seconds of sojourn).
	for _, lv := range levels {
		if lim := 500 * time.Millisecond; lv.p99 > lim {
			t.Errorf("clients=%d: p99 %v exceeds %v", lv.clients, lv.p99, lim)
		}
	}
}
