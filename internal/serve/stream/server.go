package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// ErrServerClosed is returned by Serve after Close or Shutdown.
var ErrServerClosed = errors.New("stream: server closed")

// Options parameterises the streaming listener. Zero values select the
// documented defaults.
type Options struct {
	// Window is the per-connection pipelining depth: the most request
	// frames one connection may have pending (accepted but not yet
	// dispatched to a handler). A frame past the window is shed with a
	// 429 status frame rather than stalling the reader — a blocked reader
	// would head-of-line-block every other request on the connection.
	// Default: 64.
	Window int
	// Handlers is the number of executor goroutines per connection, each
	// with its own decode scratch and score buffers — the unit of
	// in-connection concurrency that keeps the batching scheduler fed
	// from a single pipelined client. Default: 4.
	Handlers int
	// Admission is the shared admission controller consulted before a
	// request frame is accepted into the window; nil admits everything.
	// The same controller instance should also guard the process's HTTP
	// handlers, so capacity limits hold across both protocols.
	Admission *admission.Controller
	// Metrics, when non-nil, registers the listener's Prometheus series
	// (connection/frame/shed/GOAWAY counters and a pipelining-depth
	// gauge) at NewServer time. The callbacks read the same counters
	// Stats snapshots, so the two surfaces always agree.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Handlers <= 0 {
		o.Handlers = 4
	}
	return o
}

// ServerStats is a snapshot of the streaming listener's counters.
type ServerStats struct {
	// Conns is the number of currently open connections; TotalConns
	// counts every connection ever accepted.
	Conns      int64  `json:"conns"`
	TotalConns uint64 `json:"total_conns"`
	// Frames counts request frames accepted into a connection window;
	// Responses counts response frames written.
	Frames    uint64 `json:"frames"`
	Responses uint64 `json:"responses"`
	// Shed counts request frames answered with a 429 status frame
	// (admission or window overflow) instead of being executed.
	Shed uint64 `json:"shed"`
	// GoAways counts server-sent GOAWAY frames — one per drained
	// connection, whether the drain was initiated by Shutdown or by the
	// connection's own teardown acknowledgement.
	GoAways uint64 `json:"goaways"`
}

// Backend answers routed inference requests. *serve.Registry satisfies
// it in a single process; the fleet router satisfies it too, which is
// how cmd/router re-exposes the same RPS2 front end it consumes.
type Backend interface {
	InferInto(ctx context.Context, name, version string, input, scores []float64) (serve.Result, error)
}

// Server speaks RPS2 over any net.Listener, routing request frames into a
// Backend (usually a serve.Registry). One Server may serve several
// listeners; Shutdown drains every connection (GOAWAY handshake) before
// returning.
type Server struct {
	reg  Backend
	opts Options

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[*sconn]struct{}
	draining bool
	closed   bool
	connWG   sync.WaitGroup

	totalConns uint64
	frames     atomic.Uint64
	responses  atomic.Uint64
	shed       atomic.Uint64
	goaways    atomic.Uint64
}

// NewServer builds a streaming server over reg. When opts.Metrics is set
// the listener's series are registered here, once per server — they are
// callback-backed, reading the same counters Stats reads.
func NewServer(reg Backend, opts Options) *Server {
	s := &Server{
		reg:   reg,
		opts:  opts.withDefaults(),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*sconn]struct{}),
	}
	if r := s.opts.Metrics; r != nil {
		r.GaugeFunc("repro_stream_conns", "Open RPS2 connections.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.conns)) })
		r.CounterFunc("repro_stream_conns_total", "RPS2 connections ever accepted.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.totalConns) })
		r.CounterFunc("repro_stream_frames_total", "Request frames accepted into a connection window.",
			func() float64 { return float64(s.frames.Load()) })
		r.CounterFunc("repro_stream_responses_total", "Response frames written.",
			func() float64 { return float64(s.responses.Load()) })
		r.CounterFunc("repro_stream_shed_total", "Request frames answered with a 429 status frame.",
			func() float64 { return float64(s.shed.Load()) })
		r.CounterFunc("repro_stream_goaways_total", "Server-sent GOAWAY frames (connection drains).",
			func() float64 { return float64(s.goaways.Load()) })
		r.GaugeFunc("repro_stream_pipeline_depth", "Request frames pending in connection windows, summed across open connections.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				depth := 0
				for c := range s.conns {
					depth += len(c.pending)
				}
				return float64(depth)
			})
	}
	return s
}

// Stats snapshots the listener counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Conns:      int64(len(s.conns)),
		TotalConns: s.totalConns,
	}
	s.mu.Unlock()
	st.Frames = s.frames.Load()
	st.Responses = s.responses.Load()
	st.Shed = s.shed.Load()
	st.GoAways = s.goaways.Load()
	return st
}

// Serve accepts connections on ln until the listener fails or the server
// is shut down; it returns ErrServerClosed on a clean stop. Each
// connection gets a reader goroutine plus Options.Handlers executors.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		_ = ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return ErrServerClosed
			}
			return err
		}
		c := newSConn(s, nc)
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			_ = nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.totalConns++
		s.connWG.Add(1)
		s.mu.Unlock()
		go c.run()
	}
}

// Shutdown drains the server: listeners stop accepting, every open
// connection receives a GOAWAY frame, and Shutdown waits — up to ctx —
// for each connection to answer all of its in-flight frames and close.
// On ctx expiry the stragglers are force-closed and ctx.Err() returned.
// The registry is left open; the caller closes it after Shutdown so
// drained work completes normally.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for ln := range s.lns {
		_ = ln.Close()
	}
	conns := make([]*sconn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.sendGoAway()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun: new connections are
// refused, existing ones are completing their GOAWAY handshake. The
// router's drain admin endpoint surfaces this per backend.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close force-closes every listener and connection without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		_ = ln.Close()
	}
	for c := range s.conns {
		_ = c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return nil
}

// sreq is one request frame accepted into a connection's window, recycled
// through the connection's free list so the steady-state frame path
// allocates nothing.
type sreq struct {
	id       uint64
	name     string // resolved route, interned per connection
	version  string
	deadline time.Duration // client's latency budget; 0 = none
	arrival  time.Time
	wire     []byte // embedded wire-v1 request, copied out of the read buffer
	ticket   admission.Ticket
}

// route is an interned model route.
type route struct{ name, version string }

// sconn is one server-side RPS2 connection.
type sconn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// wmu serializes complete frame writes from the reader (status
	// frames), the handlers (responses) and Shutdown (GOAWAY).
	wmu    sync.Mutex
	sbuf   []byte // status/goaway encode scratch, under wmu
	goaway bool   // server GOAWAY already sent, under wmu

	pending chan *sreq
	free    chan *sreq
	routes  map[string]route // route bytes → interned name/version

	// admit is this connection's fairness accounting, handed to
	// AdmitConn so one hot pipelined connection cannot consume the whole
	// global admission budget (Config.MaxPerConn).
	admit admission.ConnState

	ctx    context.Context // cancelled when the connection is torn down
	cancel context.CancelFunc
}

func newSConn(s *Server, nc net.Conn) *sconn {
	ctx, cancel := context.WithCancel(context.Background())
	return &sconn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		pending: make(chan *sreq, s.opts.Window),
		free:    make(chan *sreq, s.opts.Window+s.opts.Handlers),
		routes:  make(map[string]route),
		ctx:     ctx,
		cancel:  cancel,
	}
}

// run owns the connection lifecycle: a handler pool drains the pending
// window while the reader loop fills it; when the reader stops (client
// GOAWAY, EOF, protocol error) the window is closed, the handlers finish
// every frame already accepted — the drain guarantee — and only then does
// the connection close.
func (c *sconn) run() {
	var hwg sync.WaitGroup
	hwg.Add(c.srv.opts.Handlers)
	for i := 0; i < c.srv.opts.Handlers; i++ {
		go func() {
			defer hwg.Done()
			c.handle()
		}()
	}
	c.read()
	close(c.pending)
	hwg.Wait()
	// All accepted frames are answered; acknowledge the drain so a
	// GOAWAY-initiated client can distinguish "drained clean" from a cut
	// connection, then tear down.
	c.wmu.Lock()
	if !c.goaway {
		c.goaway = true
		c.srv.goaways.Add(1)
		c.sbuf, _ = AppendFrame(c.sbuf[:0], FrameGoAway, 0, nil)
		_, _ = c.nc.Write(c.sbuf) // best-effort: the connection is being torn down
	}
	c.wmu.Unlock()
	c.cancel()
	_ = c.nc.Close()
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connWG.Done()
}

// sendGoAway announces the drain to the client (idempotent).
func (c *sconn) sendGoAway() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.goaway {
		return
	}
	c.goaway = true
	c.srv.goaways.Add(1)
	c.sbuf, _ = AppendFrame(c.sbuf[:0], FrameGoAway, 0, nil)
	_, _ = c.nc.Write(c.sbuf) // best-effort: a failed GOAWAY surfaces in the read loop
}

// writeFrame writes one pre-encoded frame under the write lock.
func (c *sconn) writeFrame(buf []byte) error {
	c.wmu.Lock()
	_, err := c.nc.Write(buf)
	c.wmu.Unlock()
	return err
}

// writeStatus answers id with a status frame (reader-side sheds and
// handler-less errors; uses the shared scratch under wmu).
func (c *sconn) writeStatus(id uint64, code int, retryAfter time.Duration, msg string) {
	c.wmu.Lock()
	start := 0
	c.sbuf = beginFrame(c.sbuf[:0], FrameStatus, id)
	c.sbuf = appendStatusPayload(c.sbuf, code, retryAfter, msg)
	c.sbuf = finishFrame(c.sbuf, start)
	_, _ = c.nc.Write(c.sbuf) // best-effort: a failed status write surfaces in the read loop
	c.wmu.Unlock()
}

// lookupRoute interns the route bytes into name/version strings — a map
// hit costs no allocation, so repeated routes (the steady state: clients
// address a handful of models) keep the reader allocation-free.
func (c *sconn) lookupRoute(b []byte) (string, string) {
	if rt, ok := c.routes[string(b)]; ok {
		return rt.name, rt.version
	}
	name, version := model.ParseID(string(b))
	c.routes[string(b)] = route{name: name, version: version}
	return name, version
}

// read is the connection's reader loop: decode frames, shed what
// admission or the window rejects, hand the rest to the handler pool. It
// returns when the client is done sending (GOAWAY, EOF) or the stream is
// unrecoverable (protocol error).
func (c *sconn) read() {
	var f Frame
	for {
		if err := DecodeFrame(c.br, &f); err != nil {
			return
		}
		switch f.Type {
		case FrameGoAway:
			// Client is done sending; everything accepted still completes.
			return
		case FrameRequest:
			c.readRequest(&f)
		default:
			// Response/status frames only flow server→client; a peer that
			// sends them is broken, not malicious enough to keep around.
			c.writeStatus(f.ID, 400, 0, fmt.Sprintf("stream: unexpected frame type %d from client", f.Type))
			return
		}
	}
}

// readRequest admits one request frame into the window or sheds it.
func (c *sconn) readRequest(f *Frame) {
	routeB, deadline, wire, err := parseRequestPayload(f.Payload)
	if err != nil {
		c.writeStatus(f.ID, 400, 0, err.Error())
		return
	}
	name, version := c.lookupRoute(routeB)
	var ticket admission.Ticket
	if ctrl := c.srv.opts.Admission; ctrl != nil {
		t, err := ctrl.AdmitConn(name, &c.admit)
		if err != nil {
			c.srv.shed.Add(1)
			var oe *admission.OverloadError
			errors.As(err, &oe)
			c.writeStatus(f.ID, 429, oe.RetryAfter, oe.Reason)
			return
		}
		ticket = t
	}
	var q *sreq
	select {
	case q = <-c.free:
	default:
		q = &sreq{}
	}
	q.id, q.name, q.version, q.deadline = f.ID, name, version, deadline
	q.arrival = time.Now()
	q.wire = append(q.wire[:0], wire...)
	q.ticket = ticket
	select {
	case c.pending <- q:
		c.srv.frames.Add(1)
	default:
		// Window full: shed rather than block the reader — a stalled
		// reader would head-of-line-block every response already owed.
		ticket.Release()
		c.putFree(q)
		c.srv.shed.Add(1)
		retry := time.Duration(0)
		if ctrl := c.srv.opts.Admission; ctrl != nil {
			retry = ctrl.RetryAfter()
		}
		c.writeStatus(f.ID, 429, retry, admission.ReasonQueue)
	}
}

func (c *sconn) putFree(q *sreq) {
	select {
	case c.free <- q:
	default:
	}
}

// handle is one executor goroutine: it owns all its decode and encode
// scratch, so at steady state a request frame travels decode → InferInto
// → encode → write without a single allocation.
func (c *sconn) handle() {
	var (
		scratch serve.WireRequestScratch
		results []serve.Result
		out     []byte
	)
	for q := range c.pending {
		results, out = c.handleOne(q, &scratch, results, out)
		q.ticket.Release()
		c.putFree(q)
	}
}

// handleOne answers a single request frame, returning the (possibly
// grown) scratch slices for reuse.
func (c *sconn) handleOne(q *sreq, scratch *serve.WireRequestScratch, results []serve.Result, out []byte) ([]serve.Result, []byte) {
	inputs, err := serve.ParseWireRequest(q.wire, scratch)
	if err != nil {
		c.writeStatus(q.id, 400, 0, err.Error())
		return results, out
	}
	ctx := c.ctx
	if q.deadline > 0 {
		// The only allocating branch on the frame path, taken just when
		// the client set a latency budget: the deadline context is what
		// lets the batch scheduler shed this request once it is late.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, q.arrival.Add(q.deadline))
		defer cancel()
	}
	n := len(inputs)
	for cap(results) < n {
		results = append(results[:cap(results)], serve.Result{})
	}
	results = results[:n]
	for i, in := range inputs {
		res, err := c.srv.reg.InferInto(ctx, q.name, q.version, in, results[i].Scores[:0])
		if err != nil {
			c.writeStatusErr(q.id, err)
			return results, out
		}
		results[i] = res
	}
	start := 0
	out = beginFrame(out[:0], FrameResponse, q.id)
	out, err = serve.AppendWireResults(out, results)
	if err != nil {
		c.writeStatus(q.id, 500, 0, err.Error())
		return results, out
	}
	out = finishFrame(out, start)
	if c.writeFrame(out) == nil {
		c.srv.responses.Add(1)
	}
	return results, out
}

// writeStatusErr maps a serving error onto a status frame, mirroring the
// HTTP layer's statusFor mapping.
func (c *sconn) writeStatusErr(id uint64, err error) {
	var oe *admission.OverloadError
	switch {
	case errors.As(err, &oe):
		c.srv.shed.Add(1)
		c.writeStatus(id, 429, oe.RetryAfter, oe.Reason)
	case errors.Is(err, serve.ErrNotFound):
		c.writeStatus(id, 404, 0, err.Error())
	case errors.Is(err, serve.ErrClosed):
		c.writeStatus(id, 503, 0, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		c.writeStatus(id, 408, 0, err.Error())
	default:
		c.writeStatus(id, 400, 0, err.Error())
	}
}
