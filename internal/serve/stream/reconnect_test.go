package stream

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// TestClientReconnect drives a reconnecting client through the
// fault-injection harness: the schedule kills each connection after a
// fixed number of I/O operations, and the test pins the satellite
// contract — every failure a caller sees is the typed ErrConnLost (in
// flight or fail-fast), and once the schedule is disarmed the client
// redials by itself and serves again on a fresh transport.
func TestClientReconnect(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 2, MaxBatch: 8})
	srv := NewServer(reg, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-serveDone
		reg.Close()
	})

	// Each connection dies on its 8th operation of either direction —
	// roughly four round trips in, so requests are genuinely in flight
	// when the transport goes.
	in := faultinject.New(faultinject.Config{Seed: 9, DropAfterOps: 8})
	cl, err := DialOptions(ln.Addr().String(), ClientOptions{
		Dial:         in.Dialer(ln.Addr().String()),
		Reconnect:    true,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	t.Cleanup(func() { cl.Close(ctx) })

	// Phase 1: armed. Run until the schedule has killed at least two
	// connections; every error must carry the typed identity.
	lost := 0
	for i := 0; in.Stats().Drops < 2; i++ {
		if i > 10_000 {
			t.Fatal("schedule never dropped two connections")
		}
		_, err := cl.Do(ctx, "mnist", inputs[:1])
		switch {
		case err == nil:
		case errors.Is(err, ErrConnLost):
			lost++
			time.Sleep(200 * time.Microsecond) // let the redial loop win the race
		default:
			t.Fatalf("non-typed error under injected drops: %v", err)
		}
	}
	if lost == 0 {
		t.Fatal("two connections dropped but no Do ever saw ErrConnLost")
	}

	// Phase 2: disarmed. The redial loop must re-establish a transport
	// and serve without intervention.
	in.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Do(ctx, "mnist", inputs[:1]); err == nil {
			break
		} else if !errors.Is(err, ErrConnLost) {
			t.Fatalf("non-typed error while recovering: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after disarming the schedule")
		}
		time.Sleep(time.Millisecond)
	}
	if d := cl.Dials(); d < 2 {
		t.Fatalf("Dials() = %d, want ≥ 2 (client must have redialed)", d)
	}
	if cl.GoingAway() || cl.Down() {
		t.Fatalf("recovered client reports GoingAway=%v Down=%v", cl.GoingAway(), cl.Down())
	}

	// Steady state after recovery: concurrent traffic round trips clean.
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := cl.Do(ctx, "mnist", inputs[:1]); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("post-recovery traffic failed: %v", err)
	}
}

// TestClientReconnectInFlightTyped pins the in-flight path specifically:
// a burst of concurrent calls is outstanding when the schedule cuts the
// connection, and each one resolves to the typed ErrConnLost — no hangs,
// no raw transport errors.
func TestClientReconnectInFlightTyped(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 1, MaxBatch: 1})
	srv := NewServer(reg, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-serveDone
		reg.Close()
	})

	// The very first read op kills the connection: every request of the
	// burst is written, none is ever answered.
	in := faultinject.New(faultinject.Config{Seed: 11, DropAfterOps: 1})
	cl, err := DialOptions(ln.Addr().String(), ClientOptions{
		Dial:         in.Dialer(ln.Addr().String()),
		Reconnect:    true,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	t.Cleanup(func() { cl.Close(context.Background()) })

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = cl.Do(ctx, "mnist", inputs[:1])
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			continue // raced ahead of the drop; fine
		}
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("in-flight call %d failed untyped: %v", g, err)
		}
	}
	in.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Do(ctx, "mnist", inputs[:1]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientReconnectAfterDrain pins the rolling-restart shape: the
// server drains (GOAWAY handshake) and exits, a replacement comes up on
// the same address, and a reconnecting client crosses the gap by itself —
// the drain is honored (in-flight completes), downtime errors are typed,
// and traffic resumes against the successor.
func TestClientReconnectAfterDrain(t *testing.T) {
	reg, inputs := newArch2Registry(t, serve.Options{Workers: 2, MaxBatch: 8})
	srv1 := NewServer(reg, Options{})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	serveDone1 := make(chan error, 1)
	go func() { serveDone1 <- srv1.Serve(ln1) }()

	cl, err := DialOptions(addr, ClientOptions{
		Reconnect:    true,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	t.Cleanup(func() { cl.Close(ctx); reg.Close() })

	if _, err := cl.Do(ctx, "mnist", inputs[:1]); err != nil {
		t.Fatal(err)
	}

	// Drain and stop the first server; its listener closes with it.
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	scancel()
	<-serveDone1

	// Bring the replacement up on the same address and wait for the
	// client to find it. Until then every Do fails typed.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srv2 := NewServer(reg, Options{})
	serveDone2 := make(chan error, 1)
	go func() { serveDone2 <- srv2.Serve(ln2) }()
	t.Cleanup(func() {
		srv2.Close()
		<-serveDone2
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cl.Do(ctx, "mnist", inputs[:1])
		if err == nil {
			break
		}
		if !errors.Is(err, ErrConnLost) && !errors.Is(err, ErrGoingAway) {
			t.Fatalf("non-typed error across restart: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reattached to the replacement server")
		}
		time.Sleep(time.Millisecond)
	}
	if d := cl.Dials(); d < 2 {
		t.Fatalf("Dials() = %d, want ≥ 2 across restart", d)
	}
}
