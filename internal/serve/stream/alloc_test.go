package stream

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
)

// TestStreamInferZeroAlloc is the streaming-path allocation gate: at
// steady state — client call pool, per-handler scratch, connection free
// list, route intern table and the serve-side pools all warm — a DoInto
// round trip over a real TCP connection must allocate nothing anywhere in
// the process. AllocsPerRun counts every goroutine, so the gate covers
// the client writer, the server reader, the handler, the batch scheduler
// and the response demux together.
//
// The request carries no deadline: a latency budget costs one
// context.WithDeadline per frame by design (the documented price of
// SLO shedding), which would show up here as a fixed per-op allocation.
func TestStreamInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the alloc gate runs without -race")
	}
	rng := rand.New(rand.NewSource(73))
	m, err := model.FromNetwork("arch1", "v1", nn.Arch1(rng), []int{256})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 16})
	defer reg.Close()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{Window: 32, Handlers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		cl.Close(ctx)
	}()

	inputs := [][]float64{make([]float64, 256)}
	for i := range inputs[0] {
		inputs[0][i] = rng.NormFloat64()
	}
	ctx := context.Background()
	var out []serve.Result

	// Warm every pool on the path: concurrent pipelined load exercises
	// batch assembly and grows the handler scratch, then sequential calls
	// settle the single-frame shape.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := cl.Do(ctx, "arch1", inputs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < 20; k++ {
		res, err := cl.DoInto(ctx, "arch1", inputs, out)
		if err != nil {
			t.Fatal(err)
		}
		out = res
	}

	allocs := testing.AllocsPerRun(50, func() {
		res, err := cl.DoInto(ctx, "arch1", inputs, out)
		if err != nil {
			t.Fatal(err)
		}
		out = res
	})
	if allocs > 0 {
		t.Errorf("steady-state streamed DoInto allocates %.0f/op; want 0", allocs)
	}
}
