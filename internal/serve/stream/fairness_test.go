package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// TestStreamPerConnFairness pins the fairness satellite end to end: with
// Config.MaxPerConn set, a hot pipelined connection is shed with the
// typed "fairness" reason once its share is in flight, a second
// connection keeps being admitted, and the controller's /stats counters
// agree exactly with both the client-observed sheds and the /metrics
// series (same atomics on all three surfaces).
func TestStreamPerConnFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 4, MaxBatch: 1})
	if err := reg.Register(slowModel{Model: m, delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	mx := metrics.NewRegistry()
	ctrl := admission.New(admission.Config{MaxPerConn: 1, RetryAfter: 5 * time.Millisecond})
	ctrl.RegisterMetrics(mx)
	srv := NewServer(reg, Options{Window: 16, Handlers: 4, Admission: ctrl})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	hot, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	polite, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hot.Close(ctx)
		polite.Close(ctx)
		srv.Close()
		<-serveDone
	})

	input := make([]float64, 121)
	ctx := context.Background()

	// The hot connection pipelines a burst; with a share of 1 and a
	// 100ms model, at most one request is in flight while the rest of
	// the burst is read, so the surplus sheds with the typed reason.
	const burst = 6
	var (
		wg        sync.WaitGroup
		succeeded atomic.Int64
		fairness  atomic.Int64
	)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := hot.Do(ctx, "mnist", [][]float64{input})
			if err == nil {
				succeeded.Add(1)
				return
			}
			var oe *admission.OverloadError
			if !errors.As(err, &oe) {
				t.Errorf("hot connection got untyped error: %v", err)
				return
			}
			if oe.Reason != admission.ReasonFairness {
				t.Errorf("shed reason %q, want %q", oe.Reason, admission.ReasonFairness)
				return
			}
			if oe.RetryAfter != 5*time.Millisecond {
				t.Errorf("Retry-After hint lost over the wire: %v", oe.RetryAfter)
			}
			fairness.Add(1)
		}()
	}
	// The polite connection, one request at a time, is never shed even
	// while the hot burst is being rejected.
	politeDone := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := polite.Do(ctx, "mnist", [][]float64{input}); err != nil {
				politeDone <- fmt.Errorf("polite request %d: %w", i, err)
				return
			}
		}
		politeDone <- nil
	}()
	wg.Wait()
	if err := <-politeDone; err != nil {
		t.Error(err)
	}
	if succeeded.Load() == 0 {
		t.Error("hot connection should have had its fair share admitted")
	}
	if fairness.Load() == 0 {
		t.Fatal("burst past the share produced no fairness sheds; test is vacuous")
	}

	// Parity: /stats counters, client observations and /metrics series
	// must all agree.
	st := ctrl.Stats()
	if st.ShedFairness != uint64(fairness.Load()) {
		t.Errorf("stats.ShedFairness = %d, clients observed %d", st.ShedFairness, fairness.Load())
	}
	want := fmt.Sprintf(`repro_admission_shed_total{reason="fairness"} %d`, st.ShedFairness)
	if exp := mx.Expose(); !strings.Contains(exp, want) {
		t.Errorf("/metrics missing %q\nscrape:\n%s", want, exp)
	}
}
