package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// registryModel wraps a small distinct network as name@version.
func registryModel(t *testing.T, name, version string, seed int64) model.Model {
	t.Helper()
	m, err := model.FromNetwork(name, version, testModel(seed), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// registryOptions keeps the lifecycle tests fast and deterministic.
func registryOptions(cacheSize int) Options {
	return Options{Workers: 2, MaxBatch: 4, MaxDelay: 100 * time.Microsecond, CacheSize: cacheSize}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	defer reg.Close()

	if err := reg.Register(registryModel(t, "m", "v1", 1)); err != nil {
		t.Fatal(err)
	}
	// Duplicate identity is rejected; a new version is not. The literal
	// version "latest" is reserved for the alias.
	if err := reg.Register(registryModel(t, "m", "v1", 2)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register: err=%v, want ErrExists", err)
	}
	if err := reg.Register(registryModel(t, "m", Latest, 2)); err == nil {
		t.Error("reserved version \"latest\" accepted")
	}
	if err := reg.Register(registryModel(t, "m", "v2", 2)); err != nil {
		t.Fatal(err)
	}

	input := make([]float64, 64)
	// v2 is now latest; the alias, the bare name and the pinned id must
	// agree with the reference networks.
	wantV1 := testModel(1).Predict(tensor.FromSlice(input, 1, 64))[0]
	wantV2 := testModel(2).Predict(tensor.FromSlice(input, 1, 64))[0]
	res, err := reg.Infer(context.Background(), "m", "", input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != wantV2 {
		t.Errorf("alias routed to class %d, v2 reference %d", res.Class, wantV2)
	}
	res, err = reg.Infer(context.Background(), "m", Latest, input)
	if err != nil || res.Class != wantV2 {
		t.Errorf("latest alias: class %d err %v, want %d", res.Class, err, wantV2)
	}
	res, err = reg.Infer(context.Background(), "m", "v1", input)
	if err != nil || res.Class != wantV1 {
		t.Errorf("pinned v1: class %d err %v, want %d", res.Class, err, wantV1)
	}

	// Unknown names and versions are ErrNotFound.
	if _, err := reg.Infer(context.Background(), "absent", "", input); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown name: err=%v, want ErrNotFound", err)
	}
	if _, err := reg.Infer(context.Background(), "m", "v9", input); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown version: err=%v, want ErrNotFound", err)
	}

	// Promote rolls the alias back to v1 without moving data.
	if err := reg.Promote("m", "v1"); err != nil {
		t.Fatal(err)
	}
	res, err = reg.Infer(context.Background(), "m", "", input)
	if err != nil || res.Class != wantV1 {
		t.Errorf("after promote: class %d err %v, want %d", res.Class, err, wantV1)
	}
	if err := reg.Promote("m", "v9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("promote unknown version: err=%v, want ErrNotFound", err)
	}

	// Listing shows both versions with the alias on v1.
	infos := reg.Models()
	if len(infos) != 2 {
		t.Fatalf("listing has %d entries, want 2", len(infos))
	}
	if !infos[0].Latest || infos[0].Version != "v1" || infos[1].Latest {
		t.Errorf("latest flags wrong: %+v", infos)
	}

	// Retiring a version the alias does not point at leaves the alias.
	if err := reg.Retire("m", "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(context.Background(), "m", "v2", input); !errors.Is(err, ErrNotFound) {
		t.Errorf("retired version still routable: err=%v", err)
	}
	res, err = reg.Infer(context.Background(), "m", "", input)
	if err != nil || res.Class != wantV1 {
		t.Errorf("alias after retiring non-latest: class %d err %v, want %d", res.Class, err, wantV1)
	}
	// Retiring the last version drops the name.
	if err := reg.Retire("m", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(context.Background(), "m", "", input); !errors.Is(err, ErrNotFound) {
		t.Errorf("name with no versions still routable: err=%v", err)
	}
	if err := reg.Retire("m", "v1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double retire: err=%v, want ErrNotFound", err)
	}
}

// TestLatestAliasRepointing pins the re-pointing rule: retiring the latest
// version moves the alias to the most recently registered survivor, and a
// later registration takes the alias over.
func TestLatestAliasRepointing(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	defer reg.Close()
	for i, v := range []string{"v1", "v2", "v3"} {
		if err := reg.Register(registryModel(t, "m", v, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	input := make([]float64, 64)
	classOf := func(seed int64) int { return testModel(seed).Predict(tensor.FromSlice(input, 1, 64))[0] }

	// v3 is latest; retiring it must re-point to v2 (the newest survivor),
	// not v1.
	if err := reg.Retire("m", "v3"); err != nil {
		t.Fatal(err)
	}
	res, err := reg.Infer(context.Background(), "m", "", input)
	if err != nil || res.Class != classOf(2) {
		t.Errorf("alias after retiring latest: class %d err %v, want v2's %d", res.Class, err, classOf(2))
	}
	// A new registration becomes latest immediately.
	if err := reg.Register(registryModel(t, "m", "v4", 4)); err != nil {
		t.Fatal(err)
	}
	res, err = reg.Infer(context.Background(), "m", "", input)
	if err != nil || res.Class != classOf(4) {
		t.Errorf("alias after new registration: class %d err %v, want v4's %d", res.Class, err, classOf(4))
	}
}

// TestRegistryCacheNamespacing is the satellite regression test: result
// caches are keyed by name@version plus the input bytes, so two registered
// models fed the same input vector can never alias each other's cached
// scores.
func TestRegistryCacheNamespacing(t *testing.T) {
	reg := NewRegistry(registryOptions(32))
	defer reg.Close()
	if err := reg.Register(registryModel(t, "a", "v1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(registryModel(t, "b", "v1", 2)); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	input := make([]float64, 64)
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	refA := testModel(1).Forward(tensor.FromSlice(input, 1, 64), false).Row(0)
	refB := testModel(2).Forward(tensor.FromSlice(input, 1, 64), false).Row(0)

	// Prime model a's cache with this exact input, then query model b:
	// b's first sight of the input must be a miss served by b's own
	// forward pass, never a's cached scores.
	resA, err := reg.Infer(context.Background(), "a", "", input)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := reg.Infer(context.Background(), "b", "", input)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Cached {
		t.Error("model b's first query answered from cache after priming model a")
	}
	for j := range refA {
		if resA.Scores[j] != refA[j] {
			t.Fatalf("model a score %d: %g, reference %g", j, resA.Scores[j], refA[j])
		}
		if resB.Scores[j] != refB[j] {
			t.Fatalf("model b score %d: %g, reference %g (aliased into a's cache?)", j, resB.Scores[j], refB[j])
		}
	}
	// Repeats hit each model's own namespace.
	resA2, err := reg.Infer(context.Background(), "a", "", input)
	if err != nil {
		t.Fatal(err)
	}
	resB2, err := reg.Infer(context.Background(), "b", "", input)
	if err != nil {
		t.Fatal(err)
	}
	if !resA2.Cached || !resB2.Cached {
		t.Errorf("repeats not cached: a=%v b=%v", resA2.Cached, resB2.Cached)
	}
	if resA2.Class != resA.Class || resB2.Class != resB.Class {
		t.Error("cached classes drifted from first answers")
	}
}

// TestCacheKeyNamespace pins the key encoding itself: equal inputs under
// different namespaces, and namespace/input boundary shifts, must produce
// distinct keys.
func TestCacheKeyNamespace(t *testing.T) {
	x := []float64{1, 2, 3}
	if cacheKey("a@v1", x) == cacheKey("b@v1", x) {
		t.Error("same input under different models produced the same cache key")
	}
	if cacheKey("a@v1", x) == cacheKey("a@v2", x) {
		t.Error("same input under different versions produced the same cache key")
	}
	if cacheKey("a@v1", x) != cacheKey("a@v1", []float64{1, 2, 3}) {
		t.Error("equal (namespace, input) pairs produced different keys")
	}
	// Length prefix prevents boundary shifting between namespace and data.
	if cacheKey("ab", []float64{1}) == cacheKey("a", append([]float64{0}, 1)[:1]) {
		t.Error("namespace bytes can shift into input bytes")
	}
}

// TestABWeightRouting pins the satellite's routing-distribution bounds:
// the smooth weighted round-robin must hit a 90/10 split essentially
// exactly over a window (no sampling noise), and SetWeights must validate
// its inputs.
func TestABWeightRouting(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	defer reg.Close()
	if err := reg.Register(registryModel(t, "m", "v1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(registryModel(t, "m", "v2", 2)); err != nil {
		t.Fatal(err)
	}

	// Validation: unknown version, non-positive weight.
	if err := reg.SetWeights("m", map[string]float64{"v1": 1, "v9": 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown version in weights: err=%v, want ErrNotFound", err)
	}
	if err := reg.SetWeights("m", map[string]float64{"v1": 0}); err == nil {
		t.Error("zero weight accepted")
	}
	// NaN and +Inf would poison the round-robin accumulators.
	if err := reg.SetWeights("m", map[string]float64{"v1": math.NaN(), "v2": 1}); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := reg.SetWeights("m", map[string]float64{"v1": math.Inf(1), "v2": 1}); err == nil {
		t.Error("+Inf weight accepted")
	}

	if err := reg.SetWeights("m", map[string]float64{"v1": 0.9, "v2": 0.1}); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	input := make([]float64, 64)
	for i := 0; i < total; i++ {
		if _, err := reg.Infer(context.Background(), "m", "", input); err != nil {
			t.Fatal(err)
		}
	}
	st1, err := reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := reg.Stats("m", "v2")
	if err != nil {
		t.Fatal(err)
	}
	got1, got2 := int(st1.Requests), int(st2.Requests)
	if got1+got2 != total {
		t.Fatalf("split served %d+%d of %d requests", got1, got2, total)
	}
	// Smooth WRR is exact up to rounding of the final incomplete cycle.
	if got1 < 890 || got1 > 910 {
		t.Errorf("v1 served %d of %d, want 900±10", got1, total)
	}

	// Pinned requests bypass the split.
	before := got2
	if _, err := reg.Infer(context.Background(), "m", "v2", input); err != nil {
		t.Fatal(err)
	}
	st2, err = reg.Stats("m", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if int(st2.Requests) != before+1 {
		t.Errorf("pinned request did not land on v2: %d → %d", before, st2.Requests)
	}

	// Promote clears the split: routed traffic resolves through the split
	// before the alias, so a promotion that left it in place would move
	// nothing.
	if err := reg.Promote("m", "v1"); err != nil {
		t.Fatal(err)
	}
	st1, err = reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	v1Before := st1.Requests
	for i := 0; i < 10; i++ {
		if _, err := reg.Infer(context.Background(), "m", "", input); err != nil {
			t.Fatal(err)
		}
	}
	st1, err = reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Requests != v1Before+10 {
		t.Errorf("after promote, alias traffic still split: v1 saw %d of 10", st1.Requests-v1Before)
	}

	// Re-install the split, then clear it explicitly: the name returns to
	// latest-alias routing (v1, promoted above).
	if err := reg.SetWeights("m", map[string]float64{"v1": 0.9, "v2": 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetWeights("m", nil); err != nil {
		t.Fatal(err)
	}
	st1, err = reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	v1Before = st1.Requests
	for i := 0; i < 10; i++ {
		if _, err := reg.Infer(context.Background(), "m", "", input); err != nil {
			t.Fatal(err)
		}
	}
	st1, err = reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Requests != v1Before+10 {
		t.Errorf("after clearing split, alias traffic split: v1 saw %d of 10", st1.Requests-v1Before)
	}
}

// TestRetireDissolvesDegenerateSplit pins the hot-swap interaction with a
// live canary: Register(v3) + Retire(v1) during a v1/v2 split must leave
// routed traffic on the alias target (v3), not stranded on the split's
// one surviving arm.
func TestRetireDissolvesDegenerateSplit(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	defer reg.Close()
	for i, v := range []string{"v1", "v2"} {
		if err := reg.Register(registryModel(t, "m", v, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.SetWeights("m", map[string]float64{"v1": 0.9, "v2": 0.1}); err != nil {
		t.Fatal(err)
	}
	// The documented hot-swap: register the replacement, retire the old
	// primary. The split is left with only v2 — meaningless — so it must
	// dissolve and the alias (v3) must take the traffic.
	if err := reg.Register(registryModel(t, "m", "v3", 3)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Retire("m", "v1"); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 64)
	for i := 0; i < 10; i++ {
		if _, err := reg.Infer(context.Background(), "m", "", input); err != nil {
			t.Fatal(err)
		}
	}
	st3, err := reg.Stats("m", "v3")
	if err != nil {
		t.Fatal(err)
	}
	if st3.Requests != 10 {
		st2, _ := reg.Stats("m", "v2")
		t.Errorf("after swap, v3 served %d and v2 served %d of 10 routed requests; split not dissolved",
			st3.Requests, st2.Requests)
	}
}

// TestRegistryConcurrentLifecycle is the satellite's -race lifecycle test:
// clients hammer the alias while versions register, retire, promote and
// re-weight underneath them. Alias-addressed inference must never fail —
// the routed-retry contract — and pinned inference may only fail with
// ErrNotFound or ErrClosed.
func TestRegistryConcurrentLifecycle(t *testing.T) {
	reg := NewRegistry(registryOptions(16))
	defer reg.Close()
	if err := reg.Register(registryModel(t, "m", "v0", 100)); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	var aliasErrs atomic.Int64
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	rng := rand.New(rand.NewSource(5))
	inputs := make([][]float64, 8)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := reg.Infer(context.Background(), "m", "", inputs[(c+i)%len(inputs)]); err != nil {
					t.Errorf("alias infer failed mid-swap: %v", err)
					aliasErrs.Add(1)
					return
				}
				served.Add(1)
			}
		}(c)
	}
	// One goroutine reads listings and stats continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, info := range reg.Models() {
				if info.Name != "m" {
					t.Errorf("foreign model %q in listing", info.Name)
				}
			}
			_, _ = reg.Stats("m", "")
		}
	}()

	// The swapper: register v(k), weight-split against the previous
	// version, then retire the previous version — a rolling hot swap.
	prev := "v0"
	for k := 1; k <= 8; k++ {
		version := fmt.Sprintf("v%d", k)
		if err := reg.Register(registryModel(t, "m", version, int64(100+k))); err != nil {
			t.Fatal(err)
		}
		if err := reg.SetWeights("m", map[string]float64{prev: 0.5, version: 0.5}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := reg.SetWeights("m", nil); err != nil {
			t.Fatal(err)
		}
		if err := reg.Retire("m", prev); err != nil {
			t.Fatal(err)
		}
		prev = version
	}
	close(stop)
	wg.Wait()

	if aliasErrs.Load() != 0 {
		t.Fatalf("%d alias-addressed requests failed during hot swaps", aliasErrs.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during the swap storm")
	}
	// Exactly one version must remain, holding the alias.
	infos := reg.Models()
	if len(infos) != 1 || infos[0].Version != prev || !infos[0].Latest {
		t.Fatalf("after swaps: %+v, want only %s as latest", infos, prev)
	}
}

// TestRegistryCloseSemantics: Close retires everything, is idempotent, and
// post-close registration and inference are ErrClosed.
func TestRegistryCloseSemantics(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	if err := reg.Register(registryModel(t, "m", "v1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(context.Background(), "m", "", make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	if _, err := reg.Infer(context.Background(), "m", "", make([]float64, 64)); !errors.Is(err, ErrClosed) {
		t.Errorf("infer after close: err=%v, want ErrClosed", err)
	}
	if err := reg.Register(registryModel(t, "m", "v2", 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: err=%v, want ErrClosed", err)
	}
	if len(reg.Models()) != 0 {
		t.Error("closed registry still lists models")
	}
}

// TestRegistryDenseVsCirculantAB registers a circulant model and its dense
// baseline under one name and routes between them — the A/B pair the
// paper's compression claims are measured against.
func TestRegistryDenseVsCirculantAB(t *testing.T) {
	reg := NewRegistry(registryOptions(0))
	defer reg.Close()
	rng := rand.New(rand.NewSource(9))
	circ := nn.Arch1(rng)
	dense := nn.Arch1Dense(rng)
	mc, err := model.FromNetwork("arch1", "circ", circ, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	md, err := model.DenseBaseline("arch1", "dense", dense, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(mc); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(md); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetWeights("arch1", map[string]float64{"circ": 0.5, "dense": 0.5}); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 256)
	for i := 0; i < 20; i++ {
		if _, err := reg.Infer(context.Background(), "arch1", "", input); err != nil {
			t.Fatal(err)
		}
	}
	stc, err := reg.Stats("arch1", "circ")
	if err != nil {
		t.Fatal(err)
	}
	std, err := reg.Stats("arch1", "dense")
	if err != nil {
		t.Fatal(err)
	}
	if stc.Requests != 10 || std.Requests != 10 {
		t.Errorf("50/50 split served %d/%d of 20", stc.Requests, std.Requests)
	}
}
