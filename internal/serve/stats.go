package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies are retained for the
// mean/P95 figures in Stats. A bounded window keeps Stats O(1) in memory
// under unbounded traffic while still tracking current behaviour.
const latencyWindow = 1024

// Stats is a point-in-time snapshot of the server's counters, the numbers
// the /stats endpoint and the README's results table report. Latencies are
// in microseconds to match the paper's tables and cover the full request
// path (queueing + batching delay + inference), measured over a sliding
// window of the most recent requests.
type Stats struct {
	// Requests is the total number of Infer calls accepted: answered
	// from the cache or admitted to the batch queue. Rejected calls
	// (closed server, bad shape) and submissions cancelled before
	// admission are not counted.
	Requests uint64 `json:"requests"`
	// Completed is the number of requests answered by a model forward
	// pass (cache hits are not included).
	Completed uint64 `json:"completed"`
	// Shed is the number of admitted requests the batch scheduler dropped
	// unexecuted because they were already past their SLO or context
	// deadline (answered with a typed overload error; see Options.SLO).
	Shed uint64 `json:"shed"`
	// CacheHits and CacheMisses count result-cache lookups; both are zero
	// when the cache is disabled.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheEntries is the current number of cached results.
	CacheEntries int `json:"cache_entries"`
	// SimCacheHits and SimCacheMisses count similarity-cache lookups that
	// produced an embedding; SimCacheFalseHits counts audited hits whose
	// exact class disagreed with the cached one (see SimCacheOptions);
	// SimCacheEntries is the current ring occupancy. All zero when the
	// similarity cache is disabled.
	SimCacheHits      uint64 `json:"sim_cache_hits,omitempty"`
	SimCacheMisses    uint64 `json:"sim_cache_misses,omitempty"`
	SimCacheFalseHits uint64 `json:"sim_cache_false_hits,omitempty"`
	SimCacheEntries   int    `json:"sim_cache_entries,omitempty"`
	// Batches is the number of batches dispatched to workers.
	Batches uint64 `json:"batches"`
	// MeanBatch is the mean dispatched batch size; MaxBatch is the
	// largest batch ever dispatched (never exceeds Config.MaxBatch).
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// MeanLatencyUS and P95LatencyUS are microsecond latencies over the
	// recent-request window.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P95LatencyUS  float64 `json:"p95_latency_us"`
	// Workers is the configured replica count.
	Workers int `json:"workers"`
}

// collector accumulates the mutable counters behind Stats. The cache
// counters live in resultCache's shards (each under its shard lock) and
// are aggregated per shard; see Server.Stats.
type collector struct {
	mu           sync.Mutex
	requests     uint64
	completed    uint64
	shed         uint64
	batches      uint64
	batchSizeSum uint64
	maxBatch     int
	latencies    [latencyWindow]time.Duration
	latIdx       int
	latCount     int
}

// request counts one accepted call before its cache lookup runs, so cache
// counters can never outrun Requests.
//
//repro:noalloc
func (c *collector) request() {
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

// admit counts one request entering the batch queue; unadmit reverses it
// for a submission cancelled before the scheduler accepted it.
//
//repro:noalloc
func (c *collector) admit() {
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

//repro:noalloc
func (c *collector) unadmit() {
	c.mu.Lock()
	c.requests--
	c.mu.Unlock()
}

// shedN records n requests dropped unexecuted by the deadline-aware
// scheduler.
func (c *collector) shedN(n int) {
	c.mu.Lock()
	c.shed += uint64(n)
	c.mu.Unlock()
}

// batchDone records one dispatched batch and its per-request latencies
// under a single lock acquisition, keeping the stats overhead per request
// negligible on the hot path.
func (c *collector) batchDone(size int, lats []time.Duration) {
	c.mu.Lock()
	c.batches++
	c.batchSizeSum += uint64(size)
	if size > c.maxBatch {
		c.maxBatch = size
	}
	for _, lat := range lats {
		c.completed++
		c.latencies[c.latIdx] = lat
		c.latIdx = (c.latIdx + 1) % latencyWindow
		if c.latCount < latencyWindow {
			c.latCount++
		}
	}
	c.mu.Unlock()
}

// requestsTotal / completedTotal / shedTotal expose individual counters
// for the callback-backed /metrics series. They read the same fields
// snapshot reads, under the same lock — the mechanism that keeps the
// /stats JSON and the Prometheus exposition reporting one set of numbers.
func (c *collector) requestsTotal() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.requests)
}

func (c *collector) completedTotal() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.completed)
}

func (c *collector) shedTotal() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.shed)
}

// snapshot assembles a Stats from the counters.
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Requests:  c.requests,
		Completed: c.completed,
		Shed:      c.shed,
		Batches:   c.batches,
		MaxBatch:  c.maxBatch,
	}
	if c.batches > 0 {
		s.MeanBatch = float64(c.batchSizeSum) / float64(c.batches)
	}
	if c.latCount > 0 {
		window := make([]time.Duration, c.latCount)
		copy(window, c.latencies[:c.latCount])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		var sum time.Duration
		for _, l := range window {
			sum += l
		}
		s.MeanLatencyUS = float64(sum.Microseconds()) / float64(len(window))
		s.P95LatencyUS = float64(window[len(window)*95/100].Microseconds())
	}
	return s
}
