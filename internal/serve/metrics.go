package serve

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Metric family names the serving layer exposes when Options.Metrics is
// set. Exported as constants so the canary controller and the
// conformance tests address the same families the instrumentation
// registers, instead of re-typing strings that could drift.
const (
	// MetricRequestLatency is the per-model end-to-end request latency
	// histogram (queueing + batching delay + inference), in seconds,
	// labelled model="name@version". Prometheus derives p50/p95/p99 with
	// histogram_quantile; the canary controller reads the same buckets.
	MetricRequestLatency = "repro_request_latency_seconds"
	// MetricBatchSize is the dispatched-batch-size histogram per model.
	MetricBatchSize = "repro_batch_size"
	// MetricBatchFill is a gauge of the last dispatched batch's fill
	// ratio (size / MaxBatch).
	MetricBatchFill = "repro_batch_fill"
	// MetricQueueDepth is a gauge of requests admitted but not yet
	// pulled into a batch.
	MetricQueueDepth = "repro_queue_depth"
	// MetricRequests / MetricCompleted / MetricShed are the collector's
	// request counters (see Stats); Shed counts SLO/deadline sheds by
	// the batch workers, so the family carries reason="slo".
	MetricRequests  = "repro_requests_total"
	MetricCompleted = "repro_completed_total"
	MetricShed      = "repro_shed_total"
	// MetricCacheHits / MetricCacheMisses are per-shard cache counters,
	// labelled model + shard; MetricCacheEntries is the per-model entry
	// count gauge. All three read the same per-shard counters Stats
	// aggregates, which is what keeps /stats and /metrics agreeing.
	MetricCacheHits    = "repro_cache_hits_total"
	MetricCacheMisses  = "repro_cache_misses_total"
	MetricCacheEntries = "repro_cache_entries"
	// MetricSimCacheHits / MetricSimCacheMisses count similarity-cache
	// lookups; MetricSimCacheFalseHits counts audited hits whose exact
	// class disagreed (the live hit-error estimate at the configured
	// threshold); MetricSimCacheEntries is the ring occupancy gauge. All
	// registered only when Options.SimCache is enabled.
	MetricSimCacheHits      = "repro_simcache_hits_total"
	MetricSimCacheMisses    = "repro_simcache_misses_total"
	MetricSimCacheFalseHits = "repro_simcache_false_hits_total"
	MetricSimCacheEntries   = "repro_simcache_entries"
	// MetricWorkers is the configured replica count per model.
	MetricWorkers = "repro_workers"
)

// serverMetrics is one Server's registered instrumentation. The stored
// instruments (latency and batch-size histograms, batch-fill gauge) are
// written by the worker hot path with single atomic operations; the
// counter families are callback-backed, reading the same collector and
// cache-shard counters Stats snapshots, so the two surfaces can never
// drift apart. A nil *serverMetrics (metrics disabled) is a valid
// receiver everywhere — the hot path pays one nil check.
type serverMetrics struct {
	reg      *metrics.Registry
	latency  *metrics.Histogram
	batch    *metrics.Histogram
	fill     *metrics.Gauge
	maxBatch float64

	// owned lists every (family, labels) this server registered, for
	// unregistration on Close — a retired model's callbacks must not be
	// scraped forever.
	owned [][]string
}

// newServerMetrics registers the server's families with r. Registration
// allocates; it runs once per served model, never per request.
func newServerMetrics(r *metrics.Registry, s *Server) *serverMetrics {
	id := s.id
	m := &serverMetrics{reg: r, maxBatch: float64(s.opts.MaxBatch)}
	lbl := func(name string, labels ...string) []string {
		m.owned = append(m.owned, append([]string{name}, labels...))
		return labels
	}
	m.latency = r.Histogram(MetricRequestLatency, "End-to-end request latency (queueing + batching + inference) in seconds.",
		metrics.LatencyBuckets, lbl(MetricRequestLatency, "model", id)...)
	m.batch = r.Histogram(MetricBatchSize, "Dispatched batch sizes.",
		metrics.SizeBuckets, lbl(MetricBatchSize, "model", id)...)
	m.fill = r.Gauge(MetricBatchFill, "Fill ratio (size/MaxBatch) of the most recently dispatched batch.",
		lbl(MetricBatchFill, "model", id)...)
	r.GaugeFunc(MetricQueueDepth, "Requests admitted to the batch queue but not yet dispatched.",
		func() float64 { return float64(s.queued.Load()) }, lbl(MetricQueueDepth, "model", id)...)
	r.GaugeFunc(MetricWorkers, "Configured model replicas.",
		func() float64 { return float64(s.opts.Workers) }, lbl(MetricWorkers, "model", id)...)
	c := &s.stats
	r.CounterFunc(MetricRequests, "Accepted Infer calls (cache hits + queue admissions).",
		c.requestsTotal, lbl(MetricRequests, "model", id)...)
	r.CounterFunc(MetricCompleted, "Requests answered by a model forward pass.",
		c.completedTotal, lbl(MetricCompleted, "model", id)...)
	r.CounterFunc(MetricShed, "Admitted requests dropped unexecuted because they were past their SLO or context deadline.",
		c.shedTotal, lbl(MetricShed, "model", id, "reason", "slo")...)
	if s.cache != nil {
		for i := range s.cache.shards {
			sh := &s.cache.shards[i]
			shard := strconv.Itoa(i)
			r.CounterFunc(MetricCacheHits, "Result-cache hits per shard.",
				func() float64 { h, _, _ := sh.counts(); return float64(h) },
				lbl(MetricCacheHits, "model", id, "shard", shard)...)
			r.CounterFunc(MetricCacheMisses, "Result-cache misses per shard.",
				func() float64 { _, mi, _ := sh.counts(); return float64(mi) },
				lbl(MetricCacheMisses, "model", id, "shard", shard)...)
		}
		cache := s.cache
		r.GaugeFunc(MetricCacheEntries, "Cached results currently held.",
			func() float64 { _, _, n := cache.counters(); return float64(n) },
			lbl(MetricCacheEntries, "model", id)...)
	}
	if s.sim != nil {
		sim := s.sim
		r.CounterFunc(MetricSimCacheHits, "Similarity-cache hits (cosine ≥ threshold), including audited ones.",
			func() float64 { h, _, _, _, _, _ := sim.counters(); return float64(h) },
			lbl(MetricSimCacheHits, "model", id)...)
		r.CounterFunc(MetricSimCacheMisses, "Similarity-cache lookups that embedded but matched nothing.",
			func() float64 { _, mi, _, _, _, _ := sim.counters(); return float64(mi) },
			lbl(MetricSimCacheMisses, "model", id)...)
		r.CounterFunc(MetricSimCacheFalseHits, "Audited similarity hits whose exact class disagreed with the cached one.",
			func() float64 { _, _, f, _, _, _ := sim.counters(); return float64(f) },
			lbl(MetricSimCacheFalseHits, "model", id)...)
		r.GaugeFunc(MetricSimCacheEntries, "Similarity-cache entries currently held.",
			func() float64 { _, _, _, _, _, n := sim.counters(); return float64(n) },
			lbl(MetricSimCacheEntries, "model", id)...)
	}
	return m
}

// observeBatch records one dispatched batch: its size, fill ratio and
// every request's latency. Atomic stores and adds only — the worker's
// steady state stays allocation-free with metrics enabled.
func (m *serverMetrics) observeBatch(n int, lats []time.Duration) {
	if m == nil {
		return
	}
	m.batch.Observe(float64(n))
	m.fill.Set(float64(n) / m.maxBatch)
	for _, l := range lats {
		m.latency.Observe(l.Seconds())
	}
}

// unregister removes every series this server registered.
func (m *serverMetrics) unregister() {
	if m == nil {
		return
	}
	for _, o := range m.owned {
		m.reg.Unregister(o[0], o[1:]...)
	}
}
