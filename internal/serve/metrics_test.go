package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve/admission"
)

// metricsTestRegistry builds a serving registry with Prometheus
// instrumentation attached and one registered model, returning both.
func metricsTestRegistry(t *testing.T, opts Options) (*Registry, *metrics.Registry) {
	t.Helper()
	mr := metrics.NewRegistry()
	opts.Metrics = mr
	reg := NewRegistry(opts)
	t.Cleanup(reg.Close)
	m, err := model.FromNetwork("m", "v1", testModel(3), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	return reg, mr
}

// TestStatsMetricsAgree is the library-level parity contract: after a
// quiesced traffic mix that includes cache hits, the counters a /metrics
// scrape reports must equal the same counters in the Stats snapshot —
// they are callbacks over the identical state, so any divergence is a
// wiring bug, not skew.
func TestStatsMetricsAgree(t *testing.T) {
	reg, mr := metricsTestRegistry(t, Options{Workers: 2, MaxBatch: 4, CacheSize: 32})
	ctx := context.Background()
	inputs, _ := testInputs(testModel(3), 8, 64)
	for round := 0; round < 3; round++ { // rounds 2 and 3 hit the cache
		for _, in := range inputs {
			if _, err := reg.Infer(ctx, "m", "", in); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 16 || st.CacheMisses != 8 {
		t.Fatalf("cache counters hits=%d misses=%d, want 16/8", st.CacheHits, st.CacheMisses)
	}
	out := mr.Expose()
	wants := []string{
		fmt.Sprintf(`repro_requests_total{model="m@v1"} %d`, st.Requests),
		fmt.Sprintf(`repro_completed_total{model="m@v1"} %d`, st.Completed),
		fmt.Sprintf(`repro_cache_entries{model="m@v1"} %d`, st.CacheEntries),
		`repro_shed_total{model="m@v1",reason="slo"} 0`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The per-shard hit/miss series must sum to the Stats aggregate —
	// both read the same shard counters.
	sumSeries := func(family string) (sum uint64) {
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, family+"{") {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			sum += uint64(v)
		}
		return sum
	}
	if got := sumSeries(MetricCacheHits); got != st.CacheHits {
		t.Errorf("per-shard hit series sum to %d, Stats reports %d", got, st.CacheHits)
	}
	if got := sumSeries(MetricCacheMisses); got != st.CacheMisses {
		t.Errorf("per-shard miss series sum to %d, Stats reports %d", got, st.CacheMisses)
	}
	// The latency histogram saw every completed (non-cached) request.
	h := mr.FindHistogram(MetricRequestLatency, "model", "m@v1")
	if h == nil {
		t.Fatal("latency histogram not registered")
	}
	if got := h.Snapshot().Count(); got != st.Completed {
		t.Errorf("latency observations %d, want Completed %d", got, st.Completed)
	}
}

// TestShedCounterAgrees drives a server whose SLO is impossible to meet,
// so every admitted request is shed deterministically, and pins the shed
// counter through both surfaces.
func TestShedCounterAgrees(t *testing.T) {
	reg, mr := metricsTestRegistry(t, Options{Workers: 1, MaxBatch: 4, SLO: time.Nanosecond})
	ctx := context.Background()
	inputs, _ := testInputs(testModel(3), 8, 64)
	var shed int
	for _, in := range inputs {
		_, err := reg.Infer(ctx, "m", "", in)
		var oe *admission.OverloadError
		if errors.As(err, &oe) && oe.Reason == admission.ReasonSLO {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed != len(inputs) {
		t.Fatalf("shed %d of %d requests; a 1ns SLO must shed every one", shed, len(inputs))
	}
	st, err := reg.Stats("m", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != uint64(shed) {
		t.Fatalf("Stats.Shed %d, want %d", st.Shed, shed)
	}
	want := fmt.Sprintf(`repro_shed_total{model="m@v1",reason="slo"} %d`, shed)
	if out := mr.Expose(); !strings.Contains(out, want+"\n") {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
}

// TestRetireUnregistersSeries pins the series lifecycle: a retired
// model's callback-backed series must vanish from the exposition (their
// callbacks would otherwise read freed state forever), while a sibling
// model's series survive.
func TestRetireUnregistersSeries(t *testing.T) {
	reg, mr := metricsTestRegistry(t, Options{Workers: 1, MaxBatch: 4, CacheSize: 8})
	m2, err := model.FromNetwork("m", "v2", testModel(4), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m2); err != nil {
		t.Fatal(err)
	}
	if out := mr.Expose(); !strings.Contains(out, `model="m@v1"`) || !strings.Contains(out, `model="m@v2"`) {
		t.Fatalf("both versions should be exposed before retirement:\n%s", out)
	}
	if err := reg.Retire("m", "v1"); err != nil {
		t.Fatal(err)
	}
	out := mr.Expose()
	if strings.Contains(out, `model="m@v1"`) {
		t.Errorf("retired model's series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `model="m@v2"`) {
		t.Errorf("surviving model's series lost:\n%s", out)
	}
}

// TestAdmissionMetricsAgree pins the admission controller's /metrics
// series against its Stats snapshot after a deterministic admit/shed mix.
func TestAdmissionMetricsAgree(t *testing.T) {
	mr := metrics.NewRegistry()
	ctrl := admission.New(admission.Config{MaxInflight: 2, Quota: map[string]int{"m": 1}})
	ctrl.RegisterMetrics(mr)
	t1, err := ctrl.Admit("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Admit("m"); err == nil {
		t.Fatal("second admit within quota 1 should shed")
	}
	t2, err := ctrl.Admit("other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Admit("other"); err == nil {
		t.Fatal("third inflight admit should shed at MaxInflight 2")
	}
	st := ctrl.Stats()
	out := mr.Expose()
	for _, want := range []string{
		fmt.Sprintf("repro_admission_admitted_total %d", st.Admitted),
		fmt.Sprintf(`repro_admission_shed_total{reason="inflight"} %d`, st.ShedInflight),
		fmt.Sprintf(`repro_admission_shed_total{reason="quota"} %d`, st.ShedQuota),
		fmt.Sprintf("repro_admission_inflight %d", st.Inflight),
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	t1.Release()
	t2.Release()
	if out := mr.Expose(); !strings.Contains(out, "repro_admission_inflight 0\n") {
		t.Errorf("inflight gauge did not return to 0:\n%s", out)
	}
}

// TestRegistryWeightsRaw pins the canary controller's restore contract:
// Weights returns the split exactly as configured (unnormalised), and nil
// when the name has no split.
func TestRegistryWeightsRaw(t *testing.T) {
	reg, _ := metricsTestRegistry(t, Options{Workers: 1, MaxBatch: 2})
	m2, err := model.FromNetwork("m", "v2", testModel(5), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m2); err != nil {
		t.Fatal(err)
	}
	if w := reg.Weights("m"); w != nil {
		t.Fatalf("Weights with no split = %v, want nil", w)
	}
	in := map[string]float64{"v1": 3, "v2": 1}
	if err := reg.SetWeights("m", in); err != nil {
		t.Fatal(err)
	}
	got := reg.Weights("m")
	if len(got) != 2 || got["v1"] != 3 || got["v2"] != 1 {
		t.Fatalf("Weights = %v, want the raw configured %v", got, in)
	}
	// The returned map is a copy; mutating it must not touch the route.
	got["v1"] = 100
	if w := reg.Weights("m"); w["v1"] != 3 {
		t.Error("Weights returned a map aliasing the live route")
	}
}

// TestMetricsInstrumentedInferZeroAlloc extends the serving-path
// allocation gate to the instrumented configuration: with Options.Metrics
// registered, the warm registry-routed InferInto must still allocate
// nothing — the histogram/gauge writes on the worker path are pure
// atomics.
func TestMetricsInstrumentedInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the alloc gate runs without -race")
	}
	rng := rand.New(rand.NewSource(71))
	net := nn.Arch1(rng)
	m, err := model.FromNetwork("arch1", "v1", net, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	mr := metrics.NewRegistry()
	reg := NewRegistry(Options{Workers: 1, MaxBatch: 16, Metrics: mr})
	defer reg.Close()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 256)
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	ctx := context.Background()
	var scores []float64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := reg.Infer(ctx, "arch1", "", input); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < 20; k++ {
		res, err := reg.InferInto(ctx, "arch1", "", input, scores)
		if err != nil {
			t.Fatal(err)
		}
		scores = res.Scores
	}
	allocs := testing.AllocsPerRun(50, func() {
		res, err := reg.InferInto(ctx, "arch1", "", input, scores)
		if err != nil {
			t.Fatal(err)
		}
		scores = res.Scores
	})
	if allocs > 0 {
		t.Errorf("instrumented registry-routed InferInto allocates %.1f/op; want 0", allocs)
	}
	if h := mr.FindHistogram(MetricRequestLatency, "model", "arch1@v1"); h == nil || h.Snapshot().Count() == 0 {
		t.Error("latency histogram missing or empty — instrumentation not on the path")
	}
}
