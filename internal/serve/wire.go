package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// wireBufPool recycles codec scratch between calls: a high-QPS client or
// server encodes thousands of frames per second, and the frame buffer is
// the only per-call allocation the fixed-layout codec needs. Pooled as
// *[]byte so the pool round trip itself does not allocate a header.
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getWireBuf returns a pooled byte buffer of length n (grown as needed)
// and the pool token to return via putWireBuf once the buffer's bytes have
// been written out.
func getWireBuf(n int) (*[]byte, []byte) {
	p := wireBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	buf := (*p)[:n]
	return p, buf
}

func putWireBuf(p *[]byte) { wireBufPool.Put(p) }

// Wire format v1 — the compact binary request/response codec for high-QPS
// clients, carried over the same /v1/models/{name}/infer endpoint as JSON
// and selected by Content-Type (requests) / echoed back (responses). All
// integers are little-endian; floats are IEEE-754 float64 bits.
//
// Request ("RPI1"):
//
//	magic   uint32  0x31495052 ("RPI1")
//	count   uint32  number of input vectors (≥ 1)
//	dim     uint32  features per vector
//	data    count × dim × float64
//
// Response ("RPO1"):
//
//	magic   uint32  0x314F5052 ("RPO1")
//	count   uint32  number of results
//	classes uint32  scores per result
//	per result:
//	  class      uint32  argmax class index
//	  batch_size uint32  dispatched batch size (0 = cache hit)
//	  cached     uint8   1 when answered from the result cache
//	  scores     classes × float64
//
// The fixed per-vector layout makes one encoded request exactly
// 12 + 8·count·dim bytes — for a 256-feature input that is 2060 bytes
// against ~4.9 KB of JSON, and decoding is a bounds check plus a
// byte-order pass instead of a float parser per value.

// WireContentType is the Content-Type identifying wire-format v1 bodies.
const WireContentType = "application/x-repro-infer-v1"

const (
	wireReqMagic  = 0x31495052 // "RPI1"
	wireRespMagic = 0x314F5052 // "RPO1"
)

// Wire-format decode bounds, mirroring the JSON limits: a single post may
// not fan out more batch slots or decode more bytes than the server is
// willing to hold for one client.
const (
	// MaxWireInputs is the largest number of input vectors one wire
	// request may carry.
	MaxWireInputs = 256
	// MaxWireDim is the largest per-vector feature count accepted on
	// decode (far above any architecture in the repo; it exists to bound
	// the allocation a hostile header can demand).
	MaxWireDim = 1 << 20
	// MaxWireBytes bounds the total decoded request size: a 12-byte
	// header whose count and dim each pass their range checks may still
	// multiply to gigabytes, so the product is bounded too (in 64-bit
	// arithmetic, which also keeps 8·count·dim from overflowing int on
	// 32-bit platforms). Matches the HTTP layer's body cap.
	MaxWireBytes = 64 << 20
	// maxWireIntField bounds the uint32 per-result integer fields (class,
	// batch_size) on decode: any larger value would wrap negative when
	// converted to int on a 32-bit platform, so a hostile response could
	// smuggle a negative Class or BatchSize through the codec. No honest
	// encoder emits values near this (classes ≤ MaxWireDim, batches ≤
	// MaxWireInputs in practice).
	maxWireIntField = 1<<31 - 1
)

// validateWireRequestHeader applies the request header bounds shared by
// the reader and in-memory decoders.
//
//repro:noalloc
func validateWireRequestHeader(count, dim int) error {
	if count < 1 || count > MaxWireInputs {
		return fmt.Errorf("serve: wire request count %d outside [1, %d]", count, MaxWireInputs)
	}
	if dim < 1 || dim > MaxWireDim {
		return fmt.Errorf("serve: wire request dim %d outside [1, %d]", dim, MaxWireDim)
	}
	if need := 12 + 8*int64(count)*int64(dim); need > MaxWireBytes {
		return fmt.Errorf("serve: wire request of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	return nil
}

// AppendWireRequest appends one encoded wire-format v1 request to dst and
// returns the extended slice — the in-memory form the streaming layer
// embeds in RPS2 frames (the io.Writer form below wraps it). All vectors
// must have the same non-zero length; the decode-side bounds are enforced
// here too, so a request that encodes is one every decoder accepts rather
// than a remote 400.
//
//repro:noalloc
func AppendWireRequest(dst []byte, inputs [][]float64) ([]byte, error) {
	if len(inputs) == 0 {
		return dst, fmt.Errorf("serve: wire request needs at least one input")
	}
	if len(inputs) > MaxWireInputs {
		return dst, fmt.Errorf("serve: wire request count %d exceeds %d", len(inputs), MaxWireInputs)
	}
	dim := len(inputs[0])
	if err := validateWireRequestHeader(len(inputs), dim); err != nil {
		return dst, err
	}
	for i, in := range inputs {
		if len(in) != dim {
			return dst, fmt.Errorf("serve: wire input %d has %d features, input 0 has %d", i, len(in), dim)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, wireReqMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(inputs)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dim))
	for _, in := range inputs {
		for _, v := range in {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// EncodeWireRequest writes inputs as one wire-format v1 request.
func EncodeWireRequest(w io.Writer, inputs [][]float64) error {
	p, buf := getWireBuf(0)
	defer putWireBuf(p)
	buf, err := AppendWireRequest(buf[:0], inputs)
	if err != nil {
		return err
	}
	*p = buf // keep the grown buffer for the pool
	_, err = w.Write(buf)
	return err
}

// WireRequestScratch is reusable decode storage for ParseWireRequest: one
// scratch per decoding goroutine makes the steady-state request decode
// allocation-free. The zero value is ready to use.
type WireRequestScratch struct {
	flat []float64
	vecs [][]float64
}

// ParseWireRequest decodes one wire-format v1 request held entirely in
// data (a stream frame payload). The returned vectors are views into the
// scratch, valid until its next Parse; a nil scratch allocates fresh
// storage. Trailing bytes after the encoded request are rejected — in a
// length-prefixed frame they can only be garbage.
//
//repro:noalloc
func ParseWireRequest(data []byte, s *WireRequestScratch) ([][]float64, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("serve: wire request header truncated: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != wireReqMagic {
		return nil, fmt.Errorf("serve: bad wire request magic %#x (want \"RPI1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	dim := int(binary.LittleEndian.Uint32(data[8:]))
	if err := validateWireRequestHeader(count, dim); err != nil {
		return nil, err
	}
	if want := 12 + 8*count*dim; len(data) != want {
		return nil, fmt.Errorf("serve: wire request of %d bytes, header describes %d", len(data), want)
	}
	if s == nil {
		s = &WireRequestScratch{}
	}
	if cap(s.flat) < count*dim {
		s.flat = make([]float64, count*dim)
	}
	flat := s.flat[:count*dim]
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[12+8*i:]))
	}
	if cap(s.vecs) < count {
		s.vecs = make([][]float64, count)
	}
	inputs := s.vecs[:count]
	for i := range inputs {
		inputs[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return inputs, nil
}

// DecodeWireRequest reads one wire-format v1 request and returns its input
// vectors. Malformed headers, oversize counts and truncated bodies are
// reported as errors suitable for a 400 response.
func DecodeWireRequest(r io.Reader) ([][]float64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: reading wire request header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != wireReqMagic {
		return nil, fmt.Errorf("serve: bad wire request magic %#x (want \"RPI1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	if err := validateWireRequestHeader(count, dim); err != nil {
		return nil, err
	}
	p, data := getWireBuf(8 * count * dim)
	defer putWireBuf(p)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("serve: wire request body truncated: %w", err)
	}
	flat := make([]float64, count*dim)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	inputs := make([][]float64, count)
	for i := range inputs {
		inputs[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return inputs, nil
}

// validateWireResultsHeader applies the response header bounds shared by
// the reader and in-memory decoders.
//
//repro:noalloc
func validateWireResultsHeader(count, classes int) error {
	if count < 1 || count > MaxWireInputs {
		return fmt.Errorf("serve: wire response count %d outside [1, %d]", count, MaxWireInputs)
	}
	if classes < 1 || classes > MaxWireDim {
		return fmt.Errorf("serve: wire response classes %d outside [1, %d]", classes, MaxWireDim)
	}
	if need := 12 + int64(count)*(9+8*int64(classes)); need > MaxWireBytes {
		return fmt.Errorf("serve: wire response of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	return nil
}

// decodeWireResultRecord fills one Result from its fixed-layout record,
// applying the per-record hardening checks: class and batch_size must fit
// a 32-bit int (a larger uint32 would wrap negative on 32-bit platforms),
// and the cached flag must be exactly 0 or 1 (any other byte is a
// malformed frame, not a creative truthy value).
//
//repro:noalloc
func decodeWireResultRecord(rec []byte, scores []float64, res *Result) error {
	class := binary.LittleEndian.Uint32(rec[0:])
	batch := binary.LittleEndian.Uint32(rec[4:])
	if class > maxWireIntField {
		return fmt.Errorf("serve: wire result class %d exceeds %d", class, uint32(maxWireIntField))
	}
	if batch > maxWireIntField {
		return fmt.Errorf("serve: wire result batch_size %d exceeds %d", batch, uint32(maxWireIntField))
	}
	if rec[8] > 1 {
		return fmt.Errorf("serve: wire result cached flag %d (want 0 or 1)", rec[8])
	}
	res.Class = int(class)
	res.BatchSize = int(batch)
	res.Cached = rec[8] == 1
	for j := range scores {
		scores[j] = math.Float64frombits(binary.LittleEndian.Uint64(rec[9+8*j:]))
	}
	res.Scores = scores
	return nil
}

// AppendWireResults appends one encoded wire-format v1 response to dst and
// returns the extended slice. All results must have the same non-zero
// score width, and every integer field must survive the decoders'
// hardening checks — the decode-side bounds are enforced here so an
// encoded response is always decodable.
//
//repro:noalloc
func AppendWireResults(dst []byte, results []Result) ([]byte, error) {
	if len(results) == 0 {
		return dst, fmt.Errorf("serve: wire response needs at least one result")
	}
	if len(results) > MaxWireInputs {
		return dst, fmt.Errorf("serve: wire response count %d exceeds %d", len(results), MaxWireInputs)
	}
	classes := len(results[0].Scores)
	if err := validateWireResultsHeader(len(results), classes); err != nil {
		return dst, err
	}
	for i, res := range results {
		if len(res.Scores) != classes {
			return dst, fmt.Errorf("serve: wire result %d has %d scores, result 0 has %d", i, len(res.Scores), classes)
		}
		if res.Class < 0 || res.Class > maxWireIntField {
			return dst, fmt.Errorf("serve: wire result %d class %d outside [0, %d]", i, res.Class, maxWireIntField)
		}
		if res.BatchSize < 0 || res.BatchSize > maxWireIntField {
			return dst, fmt.Errorf("serve: wire result %d batch_size %d outside [0, %d]", i, res.BatchSize, maxWireIntField)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, wireRespMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(results)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(classes))
	for _, res := range results {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Class))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(res.BatchSize))
		if res.Cached {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		for _, v := range res.Scores {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// EncodeWireResults writes results as one wire-format v1 response.
func EncodeWireResults(w io.Writer, results []Result) error {
	p, buf := getWireBuf(0)
	defer putWireBuf(p)
	buf, err := AppendWireResults(buf[:0], results)
	if err != nil {
		return err
	}
	*p = buf // keep the grown buffer for the pool
	_, err = w.Write(buf)
	return err
}

// WireResultsScratch is reusable decode storage for ParseWireResults: the
// result headers and per-result score rows are retained across calls, so
// a long-lived client connection decodes responses without allocating.
// The zero value is ready to use.
type WireResultsScratch struct {
	results []Result
	scores  []float64
}

// ParseWireResults decodes one wire-format v1 response held entirely in
// data. The returned results (and their score slices) are views into the
// scratch, valid until its next Parse; a nil scratch allocates fresh
// storage. Trailing bytes are rejected.
//
//repro:noalloc
func ParseWireResults(data []byte, s *WireResultsScratch) ([]Result, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("serve: wire response header truncated: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != wireRespMagic {
		return nil, fmt.Errorf("serve: bad wire response magic %#x (want \"RPO1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	classes := int(binary.LittleEndian.Uint32(data[8:]))
	if err := validateWireResultsHeader(count, classes); err != nil {
		return nil, err
	}
	rec := 9 + 8*classes
	if want := 12 + count*rec; len(data) != want {
		return nil, fmt.Errorf("serve: wire response of %d bytes, header describes %d", len(data), want)
	}
	if s == nil {
		s = &WireResultsScratch{}
	}
	if cap(s.results) < count {
		s.results = make([]Result, count)
	}
	if cap(s.scores) < count*classes {
		s.scores = make([]float64, count*classes)
	}
	results := s.results[:count]
	for i := range results {
		scores := s.scores[i*classes : (i+1)*classes : (i+1)*classes]
		if err := decodeWireResultRecord(data[12+i*rec:12+(i+1)*rec], scores, &results[i]); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// DecodeWireResults reads one wire-format v1 response.
func DecodeWireResults(r io.Reader) ([]Result, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: reading wire response header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != wireRespMagic {
		return nil, fmt.Errorf("serve: bad wire response magic %#x (want \"RPO1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	classes := int(binary.LittleEndian.Uint32(hdr[8:]))
	if err := validateWireResultsHeader(count, classes); err != nil {
		return nil, err
	}
	results := make([]Result, count)
	rec := make([]byte, 9+8*classes)
	for i := range results {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("serve: wire response body truncated: %w", err)
		}
		if err := decodeWireResultRecord(rec, make([]float64, classes), &results[i]); err != nil {
			return nil, err
		}
	}
	return results, nil
}
