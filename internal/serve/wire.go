package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// wireBufPool recycles codec scratch between calls: a high-QPS client or
// server encodes thousands of frames per second, and the frame buffer is
// the only per-call allocation the fixed-layout codec needs. Pooled as
// *[]byte so the pool round trip itself does not allocate a header.
var wireBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getWireBuf returns a pooled byte buffer of length n (grown as needed)
// and the pool token to return via putWireBuf once the buffer's bytes have
// been written out.
func getWireBuf(n int) (*[]byte, []byte) {
	p := wireBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	buf := (*p)[:n]
	return p, buf
}

func putWireBuf(p *[]byte) { wireBufPool.Put(p) }

// Wire format v1 — the compact binary request/response codec for high-QPS
// clients, carried over the same /v1/models/{name}/infer endpoint as JSON
// and selected by Content-Type (requests) / echoed back (responses). All
// integers are little-endian; floats are IEEE-754 float64 bits.
//
// Request ("RPI1"):
//
//	magic   uint32  0x31495052 ("RPI1")
//	count   uint32  number of input vectors (≥ 1)
//	dim     uint32  features per vector
//	data    count × dim × float64
//
// Response ("RPO1"):
//
//	magic   uint32  0x314F5052 ("RPO1")
//	count   uint32  number of results
//	classes uint32  scores per result
//	per result:
//	  class      uint32  argmax class index
//	  batch_size uint32  dispatched batch size (0 = cache hit)
//	  cached     uint8   1 when answered from the result cache
//	  scores     classes × float64
//
// The fixed per-vector layout makes one encoded request exactly
// 12 + 8·count·dim bytes — for a 256-feature input that is 2060 bytes
// against ~4.9 KB of JSON, and decoding is a bounds check plus a
// byte-order pass instead of a float parser per value.

// WireContentType is the Content-Type identifying wire-format v1 bodies.
const WireContentType = "application/x-repro-infer-v1"

const (
	wireReqMagic  = 0x31495052 // "RPI1"
	wireRespMagic = 0x314F5052 // "RPO1"
)

// Wire-format decode bounds, mirroring the JSON limits: a single post may
// not fan out more batch slots or decode more bytes than the server is
// willing to hold for one client.
const (
	// MaxWireInputs is the largest number of input vectors one wire
	// request may carry.
	MaxWireInputs = 256
	// MaxWireDim is the largest per-vector feature count accepted on
	// decode (far above any architecture in the repo; it exists to bound
	// the allocation a hostile header can demand).
	MaxWireDim = 1 << 20
	// MaxWireBytes bounds the total decoded request size: a 12-byte
	// header whose count and dim each pass their range checks may still
	// multiply to gigabytes, so the product is bounded too (in 64-bit
	// arithmetic, which also keeps 8·count·dim from overflowing int on
	// 32-bit platforms). Matches the HTTP layer's body cap.
	MaxWireBytes = 64 << 20
)

// EncodeWireRequest writes inputs as one wire-format v1 request. All
// vectors must have the same non-zero length; the decode-side bounds are
// enforced here too, so a request that encodes is one every decoder
// accepts rather than a remote 400.
func EncodeWireRequest(w io.Writer, inputs [][]float64) error {
	if len(inputs) == 0 {
		return fmt.Errorf("serve: wire request needs at least one input")
	}
	if len(inputs) > MaxWireInputs {
		return fmt.Errorf("serve: wire request count %d exceeds %d", len(inputs), MaxWireInputs)
	}
	dim := len(inputs[0])
	if dim < 1 || dim > MaxWireDim {
		return fmt.Errorf("serve: wire request dim %d outside [1, %d]", dim, MaxWireDim)
	}
	if need := 12 + 8*int64(len(inputs))*int64(dim); need > MaxWireBytes {
		return fmt.Errorf("serve: wire request of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	p, buf := getWireBuf(12 + 8*len(inputs)*dim)
	defer putWireBuf(p)
	binary.LittleEndian.PutUint32(buf[0:], wireReqMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(inputs)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(dim))
	off := 12
	for i, in := range inputs {
		if len(in) != dim {
			return fmt.Errorf("serve: wire input %d has %d features, input 0 has %d", i, len(in), dim)
		}
		for _, v := range in {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	_, err := w.Write(buf)
	return err
}

// DecodeWireRequest reads one wire-format v1 request and returns its input
// vectors. Malformed headers, oversize counts and truncated bodies are
// reported as errors suitable for a 400 response.
func DecodeWireRequest(r io.Reader) ([][]float64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: reading wire request header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != wireReqMagic {
		return nil, fmt.Errorf("serve: bad wire request magic %#x (want \"RPI1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	if count < 1 || count > MaxWireInputs {
		return nil, fmt.Errorf("serve: wire request count %d outside [1, %d]", count, MaxWireInputs)
	}
	if dim < 1 || dim > MaxWireDim {
		return nil, fmt.Errorf("serve: wire request dim %d outside [1, %d]", dim, MaxWireDim)
	}
	if need := 12 + 8*int64(count)*int64(dim); need > MaxWireBytes {
		return nil, fmt.Errorf("serve: wire request of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	p, data := getWireBuf(8 * count * dim)
	defer putWireBuf(p)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("serve: wire request body truncated: %w", err)
	}
	flat := make([]float64, count*dim)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	inputs := make([][]float64, count)
	for i := range inputs {
		inputs[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return inputs, nil
}

// EncodeWireResults writes results as one wire-format v1 response. All
// results must have the same non-zero score width; as with
// EncodeWireRequest, the decode-side bounds are enforced here so an
// encoded response is always decodable.
func EncodeWireResults(w io.Writer, results []Result) error {
	if len(results) == 0 {
		return fmt.Errorf("serve: wire response needs at least one result")
	}
	if len(results) > MaxWireInputs {
		return fmt.Errorf("serve: wire response count %d exceeds %d", len(results), MaxWireInputs)
	}
	classes := len(results[0].Scores)
	if classes < 1 || classes > MaxWireDim {
		return fmt.Errorf("serve: wire response classes %d outside [1, %d]", classes, MaxWireDim)
	}
	if need := 12 + int64(len(results))*(9+8*int64(classes)); need > MaxWireBytes {
		return fmt.Errorf("serve: wire response of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	p, buf := getWireBuf(12 + len(results)*(9+8*classes))
	defer putWireBuf(p)
	binary.LittleEndian.PutUint32(buf[0:], wireRespMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(results)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(classes))
	off := 12
	for i, res := range results {
		if len(res.Scores) != classes {
			return fmt.Errorf("serve: wire result %d has %d scores, result 0 has %d", i, len(res.Scores), classes)
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(res.Class))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(res.BatchSize))
		if res.Cached {
			buf[off+8] = 1
		}
		off += 9
		for _, v := range res.Scores {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	_, err := w.Write(buf)
	return err
}

// DecodeWireResults reads one wire-format v1 response.
func DecodeWireResults(r io.Reader) ([]Result, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: reading wire response header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != wireRespMagic {
		return nil, fmt.Errorf("serve: bad wire response magic %#x (want \"RPO1\")", m)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	classes := int(binary.LittleEndian.Uint32(hdr[8:]))
	if count < 1 || count > MaxWireInputs {
		return nil, fmt.Errorf("serve: wire response count %d outside [1, %d]", count, MaxWireInputs)
	}
	if classes < 1 || classes > MaxWireDim {
		return nil, fmt.Errorf("serve: wire response classes %d outside [1, %d]", classes, MaxWireDim)
	}
	if need := 12 + int64(count)*(9+8*int64(classes)); need > MaxWireBytes {
		return nil, fmt.Errorf("serve: wire response of %d bytes exceeds the %d-byte limit", need, MaxWireBytes)
	}
	results := make([]Result, count)
	rec := make([]byte, 9+8*classes)
	for i := range results {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("serve: wire response body truncated: %w", err)
		}
		results[i].Class = int(binary.LittleEndian.Uint32(rec[0:]))
		results[i].BatchSize = int(binary.LittleEndian.Uint32(rec[4:]))
		results[i].Cached = rec[8] == 1
		scores := make([]float64, classes)
		for j := range scores {
			scores[j] = math.Float64frombits(binary.LittleEndian.Uint64(rec[9+8*j:]))
		}
		results[i].Scores = scores
	}
	return results, nil
}
