package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/embed"
	"repro/internal/model"
	"repro/internal/nn"
)

// TestRegistryRoutedInferZeroAlloc is the serving-path allocation gate: at
// steady state — request pool, batch free-list, worker arena and score
// buffers all warm — a registry-routed InferInto with a caller-owned
// scores buffer must allocate nothing anywhere in the process (the gate is
// AllocsPerRun, which counts every goroutine's allocations, so the
// dispatcher and worker are covered, not just the caller).
//
// The cache stays disabled: a cache lookup materialises a key string per
// request by design (exact-input keying), which is the documented cost of
// enabling it.
func TestRegistryRoutedInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the alloc gate runs without -race")
	}
	rng := rand.New(rand.NewSource(71))
	net := nn.Arch1(rng)
	m, err := model.FromNetwork("arch1", "v1", net, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Options{Workers: 1, MaxBatch: 16})
	defer reg.Close()
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 256)
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	ctx := context.Background()
	var scores []float64

	// Warm every pool on the path: concurrent load exercises batch
	// assembly, then sequential calls settle the single-request shape.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := reg.Infer(ctx, "arch1", "", input); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < 20; k++ {
		res, err := reg.InferInto(ctx, "arch1", "", input, scores)
		if err != nil {
			t.Fatal(err)
		}
		scores = res.Scores
	}

	allocs := testing.AllocsPerRun(50, func() {
		res, err := reg.InferInto(ctx, "arch1", "", input, scores)
		if err != nil {
			t.Fatal(err)
		}
		scores = res.Scores
	})
	if allocs > 0 {
		t.Errorf("steady-state registry-routed InferInto allocates %.0f/op; want 0", allocs)
	}
}

// TestEmbedRoutedZeroAlloc extends the gate to the embedding workload:
// the penultimate-activation model registered under "<name>.embed" rides
// the same InferInto path, so a warm registry-routed embed must also
// allocate nothing (the PR 10 acceptance criterion; BenchmarkEmbed pins
// the same property in the ALLOC_GATE tier).
func TestEmbedRoutedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the alloc gate runs without -race")
	}
	rng := rand.New(rand.NewSource(73))
	net := nn.Arch1(rng)
	em, err := embed.NewModel("arch1", "v1", net, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Options{Workers: 1, MaxBatch: 16})
	defer reg.Close()
	if err := reg.Register(em); err != nil {
		t.Fatal(err)
	}
	route := embed.ModelName("arch1")
	input := make([]float64, 256)
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	ctx := context.Background()
	var vec []float64
	for k := 0; k < 40; k++ {
		res, err := reg.InferInto(ctx, route, "", input, vec)
		if err != nil {
			t.Fatal(err)
		}
		vec = res.Scores
	}

	allocs := testing.AllocsPerRun(50, func() {
		res, err := reg.InferInto(ctx, route, "", input, vec)
		if err != nil {
			t.Fatal(err)
		}
		vec = res.Scores
	})
	if allocs > 0 {
		t.Errorf("steady-state registry-routed embed allocates %.0f/op; want 0", allocs)
	}
}

// TestInferIntoReusesBuffer pins the InferInto contract: the returned
// scores live in the caller's buffer (no fresh slice once capacity
// suffices) and match what Infer returns.
func TestInferIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	net := nn.Arch1(rng)
	m, err := model.FromNetwork("arch1", "v1", net, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewModel(m, Options{Workers: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	input := make([]float64, 256)
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	want, err := srv.Infer(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, 64)
	got, err := srv.InferInto(context.Background(), input, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Scores[0] != &buf[:1][0] {
		t.Error("InferInto did not write into the caller's buffer")
	}
	if got.Class != want.Class || len(got.Scores) != len(want.Scores) {
		t.Fatalf("InferInto result %+v differs from Infer %+v", got, want)
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("score %d: InferInto %g, Infer %g", i, got.Scores[i], want.Scores[i])
		}
	}
}

// TestCacheSharding covers the shard layout: capacities partition across
// shards (summing to the configured total), tiny caches collapse to fewer
// shards, keys route deterministically, and aggregated counters reconcile
// with traffic.
func TestCacheSharding(t *testing.T) {
	for _, tc := range []struct{ capacity, wantShards int }{
		{1, 1}, {2, 2}, {3, 2}, {15, 8}, {16, 16}, {1024, 16},
	} {
		c := newResultCache(tc.capacity)
		if len(c.shards) != tc.wantShards {
			t.Errorf("capacity %d: %d shards, want %d", tc.capacity, len(c.shards), tc.wantShards)
		}
		total := 0
		for i := range c.shards {
			total += c.shards[i].cap
		}
		if total != tc.capacity {
			t.Errorf("capacity %d: shard capacities sum to %d", tc.capacity, total)
		}
	}

	// Fill a sharded cache far beyond capacity: the entry count must never
	// exceed the configured total, and every key must be found in the
	// shard it hashes to (get after add).
	const capacity = 32
	c := newResultCache(capacity)
	for i := 0; i < 10*capacity; i++ {
		key := cacheKey(fmt.Sprintf("m@v%d", i), []float64{float64(i)})
		sh := c.shard(key)
		sh.add(key, Result{Class: i})
		if res, ok := sh.get(key); !ok || res.Class != i {
			t.Fatalf("key %d: just-added entry not found (ok=%v)", i, ok)
		}
	}
	hits, misses, entries := c.counters()
	if entries > capacity {
		t.Errorf("cache holds %d entries, capacity %d", entries, capacity)
	}
	if hits != 10*capacity || misses != 0 {
		t.Errorf("counters hits=%d misses=%d, want %d/0", hits, misses, 10*capacity)
	}
}

// TestCacheShardedConcurrent hammers one cache from many goroutines with
// overlapping keys (hits, misses, evictions in every shard) and checks the
// aggregate counters reconcile; run under -race in CI, this is the
// regression test for the shard conversion.
func TestCacheShardedConcurrent(t *testing.T) {
	const goroutines, iters, distinct = 8, 500, 64
	c := newResultCache(distinct / 2) // force evictions
	keys := make([]string, distinct)
	for i := range keys {
		keys[i] = cacheKey("m@v1", []float64{float64(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				k := keys[rng.Intn(distinct)]
				sh := c.shard(k)
				if _, ok := sh.get(k); !ok {
					sh.miss()
					sh.add(k, Result{Class: i})
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, entries := c.counters()
	if hits+misses != goroutines*iters {
		t.Errorf("hits %d + misses %d != %d lookups", hits, misses, goroutines*iters)
	}
	if entries > distinct/2 {
		t.Errorf("cache holds %d entries, capacity %d", entries, distinct/2)
	}
}
