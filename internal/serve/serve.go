// Package serve is the batched, concurrent inference serving subsystem: it
// turns trained models — the artefacts the paper's Fig. 4 deployment
// engine produces — into a server that answers heavy concurrent traffic.
//
// The stack has two levels:
//
//   - Server executes one model.Model: a batching scheduler coalesces
//     individual requests into batches of at most Options.MaxBatch (waiting
//     at most Options.MaxDelay after the first request of a batch), a pool
//     of Options.Workers model replicas (model.Model.Replicate, so no
//     mutable state is shared) runs each dispatched batch as one planned
//     spectral pass per layer, and an optional LRU result cache — keyed by
//     the model's name@version plus the exact input bytes — answers
//     repeated queries without touching the queue at all.
//   - Registry (registry.go) holds any number of versioned Servers behind
//     "name@version" identifiers with a "latest" alias, weighted A/B
//     routing between versions, and atomic hot-swap while serving.
//
// The cmd/serve binary wraps a Registry in an HTTP interface speaking JSON
// and the compact binary wire format v1 (wire.go); see the package
// examples for direct library use.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve/admission"
	"repro/internal/tensor"
)

// errShedSLO is the typed overload error a worker answers with when it
// sheds a request already past its SLO or context deadline instead of
// running it. A shared instance: shedding is exactly what happens on the
// overloaded hot path, so it must not allocate per request.
var errShedSLO = &admission.OverloadError{Reason: admission.ReasonSLO}

// ErrClosed is returned by Infer after Close has been called.
var ErrClosed = errors.New("serve: server closed")

// InputSizeError reports an input vector whose length does not match the
// model's flattened input dimension. The HTTP layer maps it to 400.
type InputSizeError struct {
	Model string // name@version
	Got   int
	Want  int
}

func (e *InputSizeError) Error() string {
	return fmt.Sprintf("serve: input has %d features, model %s needs %d", e.Got, e.Model, e.Want)
}

// Options parameterises the batching and caching of one served model.
// Zero values select the documented defaults.
type Options struct {
	// Workers is the number of model replicas executing batches
	// concurrently. Default: GOMAXPROCS.
	Workers int
	// MaxBatch is the largest batch the scheduler will assemble.
	// Default: 16.
	MaxBatch int
	// MaxDelay bounds how long the scheduler holds the first request of
	// a batch while waiting for more. Default: 2ms.
	MaxDelay time.Duration
	// QueueDepth is the request-queue capacity; submissions beyond it
	// block in Infer. Default: Workers × MaxBatch.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries; 0 disables
	// caching.
	CacheSize int
	// SLO, when positive, is the latency objective the batch scheduler
	// enforces by shedding: a request that has already waited longer than
	// SLO when its batch reaches a worker is answered with a typed
	// overload error (admission.OverloadError, reason "slo") instead of
	// being executed — past saturation, running work nobody is still
	// waiting for only pushes every later request further past its own
	// deadline. Requests whose context deadline has passed are shed the
	// same way regardless of SLO. 0 disables age-based shedding.
	SLO time.Duration
	// SimCache, when enabled (Embed set and Capacity > 0), adds the
	// similarity-keyed result cache behind the exact LRU: inputs that miss
	// the exact cache are embedded and matched against recent results by
	// cosine similarity. Off by default. See SimCacheOptions.
	SimCache SimCacheOptions
	// Metrics, when non-nil, registers this server's Prometheus series
	// (latency and batch-size histograms, queue/cache gauges, and
	// callback-backed counters reading the same state Stats reads) under
	// a model="name@version" label. The hot-path instruments are pure
	// atomics, so enabling metrics keeps the request path allocation-free.
	// Series are unregistered by Close.
	Metrics *metrics.Registry
}

// withDefaults returns opts with zero fields replaced by defaults.
func (opts Options) withDefaults() Options {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 16
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = opts.Workers * opts.MaxBatch
	}
	return opts
}

// Config parameterises the deprecated single-model constructor New. Model
// and InShape are required.
//
// Deprecated: wrap the network with model.FromNetwork and use NewModel, or
// serve several models behind a Registry. Config survives as a shim so
// pre-registry callers keep compiling.
type Config struct {
	// Model is the trained network to serve. The server deep-copies it
	// once per worker, so the caller keeps ownership of the original.
	Model *nn.Network
	// InShape is the per-sample input shape the model expects, e.g.
	// [256] for Arch-1 or [32 32 3] for Arch-3.
	InShape []int
	// The remaining fields mirror Options; see there for defaults.
	Workers    int
	MaxBatch   int
	MaxDelay   time.Duration
	QueueDepth int
	CacheSize  int
}

// Result is one answered inference request.
type Result struct {
	// Class is the argmax class index.
	Class int `json:"class"`
	// Scores are the raw network outputs (unnormalised logits), one per
	// class.
	Scores []float64 `json:"scores"`
	// BatchSize is the size of the batch this request was served in
	// (1 for a batch of its own, 0 for a cache hit).
	BatchSize int `json:"batch_size"`
	// Cached reports whether the result came from a cache — the exact LRU
	// or, when Similarity is non-zero, the similarity cache.
	Cached bool `json:"cached"`
	// Similarity is the cosine similarity of the matched embedding for a
	// similarity-cache hit, 0 otherwise.
	Similarity float64 `json:"similarity,omitempty"`
}

// request is one in-flight inference job. Requests are pooled: the
// submitting Infer call owns the request again once it has received the
// response, and returns it for reuse. Requests abandoned by context
// cancellation are simply dropped (the worker may still touch them).
//
// scores is the request's own output row: the worker copies the model's
// output into it and hands it back through resp, and the receiving
// InferInto copies it onward into the caller's buffer before pooling the
// request. Both buffers reach a steady capacity after the first use, so
// the request round trip allocates nothing.
type request struct {
	input    []float64
	scores   []float64
	key      string      // cache key, "" when caching is disabled
	shard    *cacheShard // key's home shard, resolved once per request
	simVec   []float32   // normalised embedding, len 0 when sim cache is off
	simClass int         // the cached class an audited sim hit bet on
	simAudit bool        // this request validates a sim hit (see simCache)
	enq      time.Time
	deadline time.Time // from the submitting context; zero = none
	// err is set by the worker before the resp send when the request was
	// shed instead of executed (the channel send orders the write), and
	// cleared when the request is taken from the pool.
	err  error
	resp chan Result
}

var requestPool = sync.Pool{
	New: func() any { return &request{resp: make(chan Result, 1)} },
}

// Server is a batched concurrent inference server for one model. Create
// one with NewModel (or the deprecated New); it is safe for use by any
// number of goroutines.
type Server struct {
	opts     Options
	m        model.Model
	id       string // name@version — the cache namespace
	inShape  []int
	features int

	reqCh   chan *request
	batchCh chan []*request
	// freeBatches recycles batch slices between the dispatcher and the
	// workers, so steady-state batching allocates no slice headers.
	freeBatches chan []*request

	cache *resultCache
	sim   *simCache // nil unless Options.SimCache is enabled
	stats collector
	mx    *serverMetrics // nil when Options.Metrics is unset

	// queued counts requests submitted but not yet taken by the
	// scheduler (it is incremented before the queue send and decremented
	// as the dispatcher pulls each request into a batch). The scheduler
	// dispatches a batch immediately once no undispatched request
	// remains, instead of idling out MaxDelay; requests already
	// executing on workers must not hold a new batch back, so they are
	// deliberately not counted.
	queued atomic.Int64

	mu     sync.RWMutex // guards closed against concurrent Infer sends
	closed bool
	wg     sync.WaitGroup
}

// New starts a server for a bare network under the fixed identity
// "default@v1".
//
// Deprecated: use NewModel with a model.FromNetwork adapter (or a Registry
// for more than one model). New remains as a thin shim over that path.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	if len(cfg.InShape) == 0 {
		return nil, errors.New("serve: Config.InShape is required")
	}
	m, err := model.FromNetwork("default", "v1", cfg.Model, cfg.InShape)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return NewModel(m, Options{
		Workers:    cfg.Workers,
		MaxBatch:   cfg.MaxBatch,
		MaxDelay:   cfg.MaxDelay,
		QueueDepth: cfg.QueueDepth,
		CacheSize:  cfg.CacheSize,
	})
}

// NewModel validates the model, replicates it once per worker, and starts
// the scheduler and worker pool. The returned server must be released with
// Close. The model has already proven its shape contract in its adapter
// (nn.ProbeShape), so a mis-shaped model never reaches a worker.
func NewModel(m model.Model, opts Options) (*Server, error) {
	if m == nil {
		return nil, errors.New("serve: nil model")
	}
	if err := opts.SimCache.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	replicas := make([]model.Model, opts.Workers)
	for i := range replicas {
		r, err := m.Replicate()
		if err != nil {
			return nil, fmt.Errorf("serve: replicating %s for worker %d: %w", ModelID(m), i, err)
		}
		replicas[i] = r
	}

	s := &Server{
		opts:     opts,
		m:        m,
		id:       ModelID(m),
		inShape:  m.InShape(),
		features: m.InDim(),
		reqCh:    make(chan *request, opts.QueueDepth),
		batchCh:  make(chan []*request, opts.Workers),
		// One slice per worker plus one in the dispatcher's hands.
		freeBatches: make(chan []*request, opts.Workers+1),
	}
	if opts.CacheSize > 0 {
		s.cache = newResultCache(opts.CacheSize)
	}
	if opts.SimCache.enabled() {
		s.sim = newSimCache(opts.SimCache)
	}
	if opts.Metrics != nil {
		s.mx = newServerMetrics(opts.Metrics, s)
	}
	s.wg.Add(1 + opts.Workers)
	go s.dispatch()
	for _, r := range replicas {
		go s.worker(r)
	}
	return s, nil
}

// ModelID renders a model's "name@version" identifier.
func ModelID(m model.Model) string { return model.ID(m.Name(), m.Version()) }

// Model returns the model this server executes.
func (s *Server) Model() model.Model { return s.m }

// Infer submits one input vector (features in row-major InShape order,
// length = the model's InDim) and blocks until the result is available,
// the context is cancelled, or the server is closed. It is safe to call
// from any number of goroutines; concurrent calls are what the batching
// scheduler feeds on.
func (s *Server) Infer(ctx context.Context, input []float64) (Result, error) {
	return s.InferInto(ctx, input, nil)
}

// InferInto is Infer writing the result's scores into the caller-owned
// buffer scores (grown as needed; nil allocates a fresh slice, which is
// exactly Infer). Reusing one buffer per calling goroutine makes the
// steady-state request path allocation-free end to end. The buffer is
// surrendered for the duration of the call: on a cancellation or error
// the caller must not reuse it for anything else, and the returned
// Result's Scores always replaces it.
//
//repro:noalloc
func (s *Server) InferInto(ctx context.Context, input, scores []float64) (Result, error) {
	if len(input) != s.features {
		return Result{}, &InputSizeError{Model: s.id, Got: len(input), Want: s.features}
	}

	// Reject before touching the cache, so a closed server honours the
	// ErrClosed contract even for inputs it could answer from the LRU.
	// Stats.Requests counts only accepted calls, so it is bumped on the
	// cache-hit return and after queue admission — never on a rejection.
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return Result{}, ErrClosed
	}

	var key string
	var shard *cacheShard
	precounted := s.cache != nil || s.sim != nil
	if precounted {
		// Count the request before any cache lookup: hits are recorded
		// inside the caches under their locks, and a cache counter must
		// never outrun the request it belongs to (Stats reads the caches
		// before the collector, so CacheHits+CacheMisses ≤ Requests holds
		// in every snapshot). The pre-count is reversed on the
		// closed-server and cancelled-before-admission paths below, keeping
		// the "only accepted calls are counted" contract.
		s.stats.request()
	}
	if s.cache != nil {
		//repro:lint-ignore noalloc the result-cache key is one small allocation, the documented cost of enabling the LRU
		key = cacheKey(s.id, input)
		shard = s.cache.shard(key)
		if res, ok := shard.get(key); ok {
			res.Cached = true
			res.BatchSize = 0
			res.Scores = append(scores[:0], res.Scores...)
			return res, nil
		}
		// The miss is recorded only after queue admission below, so the
		// cache counters stay consistent with Requests when a submission
		// is cancelled or rejected.
	}

	r := requestPool.Get().(*request)
	r.input = append(r.input[:0], input...) // detach from caller
	r.key = key
	r.shard = shard
	r.simVec = r.simVec[:0]
	r.simAudit = false
	r.enq = time.Now()
	r.deadline, _ = ctx.Deadline()
	r.err = nil

	if s.sim != nil {
		// Similarity lookup behind the exact LRU: embed the input (into the
		// request's reusable buffer, so the worker can cache a miss without
		// re-embedding) and serve a confident near-repeat from the ring. An
		// audited hit falls through: the request runs exactly and the worker
		// scores the cached bet afterwards (simCache false-hit accounting).
		//repro:lint-ignore noalloc the embed pass behind a sim lookup may allocate, the documented cost of enabling the similarity cache
		res, hit, audit := s.sim.lookup(r, scores)
		if hit && !audit {
			requestPool.Put(r)
			return res, nil
		}
		if audit {
			r.simAudit, r.simClass = true, res.Class
		}
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		requestPool.Put(r)
		if precounted {
			s.stats.unadmit() // reverse the pre-lookup request count
		}
		return Result{}, ErrClosed
	}
	// Count the request (pre-counted above when a cache lookup ran) and
	// then the cache miss before the send: once the scheduler can see the
	// request, Stats must already include it, so Requests ≥ Completed
	// holds at every instant, and a miss is never counted before its
	// request. A submission cancelled before admission is uncounted
	// again, in reverse order.
	s.queued.Add(1)
	if !precounted {
		s.stats.admit()
	} else if s.cache != nil {
		shard.miss()
	}
	select {
	case s.reqCh <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.queued.Add(-1)
		if s.cache != nil {
			r.shard.unmiss()
		}
		s.stats.unadmit()
		s.mu.RUnlock()
		requestPool.Put(r)
		return Result{}, ctx.Err()
	}

	select {
	case res := <-r.resp:
		if err := r.err; err != nil {
			// Shed by the worker (past SLO or deadline): the typed
			// overload error is the response.
			requestPool.Put(r)
			return Result{}, err
		}
		// res.Scores is the pooled request's own buffer; detach into the
		// caller's before the request (and with it the buffer) is reused.
		res.Scores = append(scores[:0], res.Scores...)
		requestPool.Put(r)
		return res, nil
	case <-ctx.Done():
		// The worker still holds the request; let the GC reclaim it.
		return Result{}, ctx.Err()
	}
}

// Stats returns a snapshot of the server's counters. The cache figures
// (hits, misses, entries) are aggregated shard by shard — each shard's
// three numbers are read under that shard's lock, never all shard locks
// at once, so a stats poll cannot stall concurrent /infer traffic; a
// lookup landing in a shard after it was summed is simply not in this
// snapshot. The cache is read before the collector, so neither a hit nor
// a miss can appear in the snapshot ahead of the request it belongs to
// (requests are always counted first on the Infer path). With no
// cancellations in flight this keeps CacheHits + CacheMisses ≤ Requests in
// every snapshot; a submission cancelled between the two reads can
// transiently overshoot by the number of such cancellations, since its
// unmiss/unadmit pair lands across the snapshot boundary.
func (s *Server) Stats() Stats {
	var hits, misses uint64
	var entries int
	if s.cache != nil {
		hits, misses, entries = s.cache.counters()
	}
	st := s.stats.snapshot()
	st.CacheHits, st.CacheMisses, st.CacheEntries = hits, misses, entries
	if s.sim != nil {
		sh, sm, sf, _, _, sn := s.sim.counters()
		st.SimCacheHits, st.SimCacheMisses, st.SimCacheFalseHits, st.SimCacheEntries = sh, sm, sf, sn
	}
	st.Workers = s.opts.Workers
	return st
}

// Close stops accepting requests, waits for all in-flight requests to be
// answered, and shuts down the worker pool. Infer calls made after Close
// return ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.reqCh)
	s.mu.Unlock()
	s.wg.Wait()
	// Unregister after the workers are gone: a retired model's
	// callback-backed series must not outlive the state they read.
	s.mx.unregister()
}

// dispatch is the batching scheduler: it assembles batches of up to
// MaxBatch requests, holding an open batch no longer than MaxDelay past
// its first request, and hands them to the worker pool.
//
// Two refinements keep tail latency down without sacrificing batch size:
// already-queued requests are drained greedily before any waiting, and a
// batch is dispatched early once no undispatched request remains — at
// that point further waiting could only serve requests that do not exist
// yet, which is exactly the closed-loop case where deadline idling would
// otherwise dominate latency.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batchCh)
	// One deadline timer reused across batches and batch slices recycled
	// through freeBatches: the scheduler's steady state allocates nothing
	// per batch.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		first, ok := <-s.reqCh
		if !ok {
			return
		}
		s.queued.Add(-1)
		var batch []*request
		select {
		case batch = <-s.freeBatches:
			batch = batch[:0]
		default:
			batch = make([]*request, 0, s.opts.MaxBatch)
		}
		batch = append(batch, first)
		draining := false
		if s.opts.MaxBatch > 1 {
			timer.Reset(s.opts.MaxDelay)
			timerFired := false
			yielded := false
		fill:
			for len(batch) < s.opts.MaxBatch {
				// Greedy phase: take whatever is already queued.
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						draining = true
						break fill
					}
					s.queued.Add(-1)
					batch = append(batch, r)
					yielded = false
					continue
				default:
				}
				// Queue empty. Yield once so runnable submitters (clients
				// that have entered Infer but not yet reached the channel
				// send) can land their requests — without this, a
				// single-CPU host dispatches everything in batches of one.
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				// If no undispatched request remains, dispatch now:
				// waiting longer could only serve requests that do not
				// exist yet. Otherwise wait for the stragglers, bounded
				// by the deadline.
				if s.queued.Load() == 0 {
					break fill
				}
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						draining = true
						break fill
					}
					s.queued.Add(-1)
					batch = append(batch, r)
					yielded = false
				case <-timer.C:
					timerFired = true
					break fill
				}
			}
			// Quiesce the reused timer: if it has not fired, Stop it and
			// drain any value that raced in, so the next Reset starts
			// clean under pre-1.23 timer semantics too.
			if !timerFired && !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		s.batchCh <- batch
		if draining {
			return
		}
	}
}

// worker executes batches on its own model replica with its own reusable
// workspace and input buffer, then fans results back out to the
// per-request channels. The Forward call below is where batching pays:
// the coalesced batch tensor takes one batched spectral pass per
// block-circulant layer instead of one product per request.
func (s *Server) worker(m model.Model) {
	defer s.wg.Done()
	ws := nn.NewWorkspace()
	buf := make([]float64, s.opts.MaxBatch*s.features)
	lats := make([]time.Duration, 0, s.opts.MaxBatch)
	// The input tensor header is bound to buf per batch instead of
	// allocated: shape[0] is the only per-batch variable.
	shape := make([]int, 1+len(s.inShape))
	copy(shape[1:], s.inShape)
	var xt tensor.Tensor
	for batch := range s.batchCh {
		// Deadline-aware shed before execution: a request that has already
		// outlived its SLO (or its caller's context deadline) gets the
		// typed overload error now, for free, instead of a batch slot.
		// Shedding at the worker rather than at admission is what bounds
		// tail latency at saturation — whatever time a batch spent queued
		// is charged against its requests before any model work starts.
		now := time.Now()
		live := batch[:0]
		for _, r := range batch {
			expired := !r.deadline.IsZero() && now.After(r.deadline)
			if !expired && s.opts.SLO > 0 && now.Sub(r.enq) > s.opts.SLO {
				expired = true
			}
			if expired {
				r.err = errShedSLO
				r.resp <- Result{}
				continue
			}
			live = append(live, r)
		}
		if shed := len(batch) - len(live); shed > 0 {
			s.stats.shedN(shed)
		}
		batch = live
		n := len(batch)
		if n == 0 {
			select {
			case s.freeBatches <- batch:
			default:
			}
			continue
		}
		for i, r := range batch {
			copy(buf[i*s.features:(i+1)*s.features], r.input)
		}
		shape[0] = n
		x := xt.Bind(buf[:n*s.features], shape...)
		out := m.Forward(ws, x)
		// Record stats before fanning responses out: the moment the last
		// response lands, a caller may read Stats and must see this batch.
		now = time.Now()
		lats = lats[:0]
		for _, r := range batch {
			lats = append(lats, now.Sub(r.enq))
		}
		s.stats.batchDone(n, lats)
		s.mx.observeBatch(n, lats)
		// Each requester's scores are copied out of the output tensor into
		// the request's own reusable row: the output may be a view of the
		// worker's reused input buffer (a pass-through model) or of
		// layer-retained scratch (the workspace arena), so rows must never
		// be handed out by reference — and the receiving InferInto copies
		// the row onward before the request is pooled, so no slab
		// allocation is needed either.
		classes := out.Dim(1)
		for i, r := range batch {
			r.scores = append(r.scores[:0], out.Data[i*classes:(i+1)*classes]...)
			res := Result{Class: nn.Argmax(r.scores), Scores: r.scores, BatchSize: n}
			if s.cache != nil {
				// Cache a private copy of the scores: the request's row is
				// reused on its next trip through the pool.
				cres := res
				cres.Scores = append([]float64(nil), r.scores...)
				r.shard.add(r.key, cres)
			}
			if s.sim != nil {
				if r.simAudit {
					// An audited similarity hit: score the cached bet
					// against the exact class. The entry is already in the
					// ring, so no add.
					if res.Class != r.simClass {
						s.sim.falseHit()
					}
				} else {
					s.sim.add(r.simVec, res.Class, r.scores)
				}
			}
			r.resp <- res
		}
		// Recycle the batch slice; drop it if the free list is full (the
		// server is closing or sized smaller than the in-flight count).
		select {
		case s.freeBatches <- batch:
		default:
		}
	}
}
