// Package serve is the batched, concurrent inference serving subsystem: it
// turns a trained network — the artefact the paper's Fig. 4 deployment
// engine produces — into a server that answers heavy concurrent traffic.
//
// Three mechanisms carry the load:
//
//   - A batching scheduler coalesces individual requests into batches of at
//     most Config.MaxBatch, waiting at most Config.MaxDelay after the first
//     request of a batch. A dispatched batch is executed as one planned
//     spectral pass per layer (the batched engine behind
//     nn.Network.ForwardWS), not as N independent forwards: every
//     block-circulant layer transforms the whole batch through one FFT plan
//     and streams each cached weight spectrum across all requests at once.
//   - A pool of Config.Workers model replicas (deep copies via
//     nn.Network.Clone, so no mutable state is shared) executes batches
//     concurrently. Each worker owns one nn.Workspace — per-vector and
//     batched FFT scratch both — and threads it through every forward pass,
//     so the steady state performs no FFT scratch allocation per request.
//   - An optional LRU result cache keyed by the exact input bytes answers
//     repeated queries without touching the queue at all.
//
// The cmd/serve binary wraps a Server in an HTTP/JSON interface; see the
// package example for direct library use.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ErrClosed is returned by Infer after Close has been called.
var ErrClosed = errors.New("serve: server closed")

// Config parameterises a Server. Model and InShape are required; zero
// values elsewhere select the documented defaults.
type Config struct {
	// Model is the trained network to serve. The server deep-copies it
	// once per worker, so the caller keeps ownership of the original.
	Model *nn.Network
	// InShape is the per-sample input shape the model expects, e.g.
	// [256] for Arch-1 or [32 32 3] for Arch-3.
	InShape []int
	// Workers is the number of model replicas executing batches
	// concurrently. Default: GOMAXPROCS.
	Workers int
	// MaxBatch is the largest batch the scheduler will assemble.
	// Default: 16.
	MaxBatch int
	// MaxDelay bounds how long the scheduler holds the first request of
	// a batch while waiting for more. Default: 2ms.
	MaxDelay time.Duration
	// QueueDepth is the request-queue capacity; submissions beyond it
	// block in Infer. Default: Workers × MaxBatch.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries; 0 disables
	// caching.
	CacheSize int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = cfg.Workers * cfg.MaxBatch
	}
	return cfg
}

// Result is one answered inference request.
type Result struct {
	// Class is the argmax class index.
	Class int `json:"class"`
	// Scores are the raw network outputs (unnormalised logits), one per
	// class.
	Scores []float64 `json:"scores"`
	// BatchSize is the size of the batch this request was served in
	// (1 for a batch of its own, 0 for a cache hit).
	BatchSize int `json:"batch_size"`
	// Cached reports whether the result came from the LRU cache.
	Cached bool `json:"cached"`
}

// request is one in-flight inference job. Requests are pooled: the
// submitting Infer call owns the request again once it has received the
// response, and returns it for reuse. Requests abandoned by context
// cancellation are simply dropped (the worker may still touch them).
type request struct {
	input []float64
	key   string // cache key, "" when caching is disabled
	enq   time.Time
	resp  chan Result
}

var requestPool = sync.Pool{
	New: func() any { return &request{resp: make(chan Result, 1)} },
}

// Server is a batched concurrent inference server. Create one with New;
// it is safe for use by any number of goroutines.
type Server struct {
	cfg      Config
	features int // product of InShape

	reqCh   chan *request
	batchCh chan []*request

	cache *resultCache
	stats collector

	// queued counts requests submitted but not yet taken by the
	// scheduler (it is incremented before the queue send and decremented
	// as the dispatcher pulls each request into a batch). The scheduler
	// dispatches a batch immediately once no undispatched request
	// remains, instead of idling out MaxDelay; requests already
	// executing on workers must not hold a new batch back, so they are
	// deliberately not counted.
	queued atomic.Int64

	mu     sync.RWMutex // guards closed against concurrent Infer sends
	closed bool
	wg     sync.WaitGroup
}

// New validates the configuration, probes the model with a zero input to
// verify InShape, replicates the model once per worker, and starts the
// scheduler and worker pool. The returned server must be released with
// Close.
func New(cfg Config) (srv *Server, err error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	if len(cfg.InShape) == 0 {
		return nil, errors.New("serve: Config.InShape is required")
	}
	features := 1
	for _, d := range cfg.InShape {
		if d < 1 {
			return nil, fmt.Errorf("serve: non-positive input dimension in %v", cfg.InShape)
		}
		features *= d
	}

	// Probe: layers panic on shape mismatch; surface that as an error
	// here rather than in a worker. The recover is scoped to the probe
	// alone so unrelated panics keep their real cause.
	probe, err := func() (t *tensor.Tensor, err error) {
		defer func() {
			if p := recover(); p != nil {
				t, err = nil, fmt.Errorf("serve: model rejects input shape %v: %v", cfg.InShape, p)
			}
		}()
		return cfg.Model.Forward(tensor.New(append([]int{1}, cfg.InShape...)...), false), nil
	}()
	if err != nil {
		return nil, err
	}
	if probe.Rank() != 2 {
		return nil, fmt.Errorf("serve: model output rank %d, want 2 ([batch, classes])", probe.Rank())
	}

	replicas := make([]*nn.Network, cfg.Workers)
	for i := range replicas {
		r, err := cfg.Model.Clone()
		if err != nil {
			return nil, fmt.Errorf("serve: replicating model for worker %d: %w", i, err)
		}
		replicas[i] = r
	}

	s := &Server{
		cfg:      cfg,
		features: features,
		reqCh:    make(chan *request, cfg.QueueDepth),
		batchCh:  make(chan []*request, cfg.Workers),
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	s.wg.Add(1 + cfg.Workers)
	go s.dispatch()
	for _, r := range replicas {
		go s.worker(r)
	}
	return s, nil
}

// Infer submits one input vector (features in row-major InShape order,
// length = the product of InShape) and blocks until the result is
// available, the context is cancelled, or the server is closed. It is safe
// to call from any number of goroutines; concurrent calls are what the
// batching scheduler feeds on.
func (s *Server) Infer(ctx context.Context, input []float64) (Result, error) {
	if len(input) != s.features {
		return Result{}, fmt.Errorf("serve: input has %d features, model needs %d", len(input), s.features)
	}

	// Reject before touching the cache, so a closed server honours the
	// ErrClosed contract even for inputs it could answer from the LRU.
	// Stats.Requests counts only accepted calls, so it is bumped on the
	// cache-hit return and after queue admission — never on a rejection.
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return Result{}, ErrClosed
	}

	var key string
	if s.cache != nil {
		// Count the request before the lookup: the hit is recorded inside
		// get under the cache lock, and a cache counter must never outrun
		// the request it belongs to (Stats reads the cache before the
		// collector, so CacheHits+CacheMisses ≤ Requests holds in every
		// snapshot). The pre-count is reversed on the closed-server and
		// cancelled-before-admission paths below, keeping the "only
		// accepted calls are counted" contract.
		s.stats.request()
		key = cacheKey(input)
		if res, ok := s.cache.get(key); ok {
			res.Cached = true
			res.BatchSize = 0
			res.Scores = append([]float64(nil), res.Scores...)
			return res, nil
		}
		// The miss is recorded only after queue admission below, so the
		// cache counters stay consistent with Requests when a submission
		// is cancelled or rejected.
	}

	r := requestPool.Get().(*request)
	r.input = append(r.input[:0], input...) // detach from caller
	r.key = key
	r.enq = time.Now()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		requestPool.Put(r)
		if s.cache != nil {
			s.stats.unadmit() // reverse the pre-lookup request count
		}
		return Result{}, ErrClosed
	}
	// Count the request (pre-counted above when a cache lookup ran) and
	// then the cache miss before the send: once the scheduler can see the
	// request, Stats must already include it, so Requests ≥ Completed
	// holds at every instant, and a miss is never counted before its
	// request. A submission cancelled before admission is uncounted
	// again, in reverse order.
	s.queued.Add(1)
	if s.cache == nil {
		s.stats.admit()
	} else {
		s.cache.miss()
	}
	select {
	case s.reqCh <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.queued.Add(-1)
		if s.cache != nil {
			s.cache.unmiss()
		}
		s.stats.unadmit()
		s.mu.RUnlock()
		requestPool.Put(r)
		return Result{}, ctx.Err()
	}

	select {
	case res := <-r.resp:
		requestPool.Put(r)
		return res, nil
	case <-ctx.Done():
		// The worker still holds the request; let the GC reclaim it.
		return Result{}, ctx.Err()
	}
}

// Stats returns a snapshot of the server's counters. The three cache
// figures (hits, misses, entries) are read under a single cache-lock
// acquisition so they are mutually consistent even while /infer traffic is
// moving the cache; they are read before the collector so neither a hit
// nor a miss can appear in the snapshot ahead of the request it belongs to
// (requests are always counted first on the Infer path). With no
// cancellations in flight this keeps CacheHits + CacheMisses ≤ Requests in
// every snapshot; a submission cancelled between the two reads can
// transiently overshoot by the number of such cancellations, since its
// unmiss/unadmit pair lands across the snapshot boundary.
func (s *Server) Stats() Stats {
	var hits, misses uint64
	var entries int
	if s.cache != nil {
		hits, misses, entries = s.cache.counters()
	}
	st := s.stats.snapshot()
	st.CacheHits, st.CacheMisses, st.CacheEntries = hits, misses, entries
	st.Workers = s.cfg.Workers
	return st
}

// Close stops accepting requests, waits for all in-flight requests to be
// answered, and shuts down the worker pool. Infer calls made after Close
// return ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.reqCh)
	s.mu.Unlock()
	s.wg.Wait()
}

// dispatch is the batching scheduler: it assembles batches of up to
// MaxBatch requests, holding an open batch no longer than MaxDelay past
// its first request, and hands them to the worker pool.
//
// Two refinements keep tail latency down without sacrificing batch size:
// already-queued requests are drained greedily before any waiting, and a
// batch is dispatched early once no undispatched request remains — at
// that point further waiting could only serve requests that do not exist
// yet, which is exactly the closed-loop case where deadline idling would
// otherwise dominate latency.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batchCh)
	for {
		first, ok := <-s.reqCh
		if !ok {
			return
		}
		s.queued.Add(-1)
		batch := make([]*request, 1, s.cfg.MaxBatch)
		batch[0] = first
		draining := false
		if s.cfg.MaxBatch > 1 {
			timer := time.NewTimer(s.cfg.MaxDelay)
			yielded := false
		fill:
			for len(batch) < s.cfg.MaxBatch {
				// Greedy phase: take whatever is already queued.
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						draining = true
						break fill
					}
					s.queued.Add(-1)
					batch = append(batch, r)
					yielded = false
					continue
				default:
				}
				// Queue empty. Yield once so runnable submitters (clients
				// that have entered Infer but not yet reached the channel
				// send) can land their requests — without this, a
				// single-CPU host dispatches everything in batches of one.
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				// If no undispatched request remains, dispatch now:
				// waiting longer could only serve requests that do not
				// exist yet. Otherwise wait for the stragglers, bounded
				// by the deadline.
				if s.queued.Load() == 0 {
					break fill
				}
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						draining = true
						break fill
					}
					s.queued.Add(-1)
					batch = append(batch, r)
					yielded = false
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		}
		s.batchCh <- batch
		if draining {
			return
		}
	}
}

// worker executes batches on its own model replica with its own reusable
// workspace and input buffer, then fans results back out to the
// per-request channels. The ForwardWS call below is where batching pays:
// the coalesced batch tensor takes one batched spectral pass per
// block-circulant layer instead of one product per request.
func (s *Server) worker(net *nn.Network) {
	defer s.wg.Done()
	ws := nn.NewWorkspace()
	buf := make([]float64, s.cfg.MaxBatch*s.features)
	lats := make([]time.Duration, 0, s.cfg.MaxBatch)
	for batch := range s.batchCh {
		n := len(batch)
		for i, r := range batch {
			copy(buf[i*s.features:(i+1)*s.features], r.input)
		}
		x := tensor.FromSlice(buf[:n*s.features], append([]int{n}, s.cfg.InShape...)...)
		out := net.ForwardWS(ws, x, false)
		// Record stats before fanning responses out: the moment the last
		// response lands, a caller may read Stats and must see this batch.
		now := time.Now()
		lats = lats[:0]
		for _, r := range batch {
			lats = append(lats, now.Sub(r.enq))
		}
		s.stats.batchDone(n, lats)
		// Scores are copied out of the output tensor into one fresh slab
		// per batch: the output may be a view of the worker's reused input
		// buffer (a pass-through model) or of layer-retained scratch, so
		// rows must never be handed out by reference. One slab instead of
		// one allocation per request keeps the fan-out cheap; each
		// requester gets a capped (three-index) subslice, so appending to
		// its Scores cannot bleed into a neighbour's row.
		classes := out.Dim(1)
		slab := make([]float64, n*classes)
		copy(slab, out.Data[:n*classes])
		for i, r := range batch {
			scores := slab[i*classes : (i+1)*classes : (i+1)*classes]
			res := Result{Class: nn.Argmax(scores), Scores: scores, BatchSize: n}
			if s.cache != nil {
				// Cache a private copy of the scores: the requester owns
				// the slice in res and may mutate it.
				cres := res
				cres.Scores = append([]float64(nil), scores...)
				s.cache.add(r.key, cres)
			}
			r.resp <- res
		}
	}
}
