package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWireRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, 7)
	for i := range inputs {
		inputs[i] = make([]float64, 33)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	// Exact bit patterns must survive, including the edge values float
	// text formats mangle.
	inputs[0][0] = math.Inf(1)
	inputs[0][1] = -0.0
	inputs[0][2] = math.SmallestNonzeroFloat64

	var buf bytes.Buffer
	if err := EncodeWireRequest(&buf, inputs); err != nil {
		t.Fatal(err)
	}
	if want := 12 + 8*7*33; buf.Len() != want {
		t.Errorf("encoded size %d, want %d", buf.Len(), want)
	}
	got, err := DecodeWireRequest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inputs) {
		t.Fatalf("decoded %d inputs, want %d", len(got), len(inputs))
	}
	for i := range inputs {
		for j := range inputs[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(inputs[i][j]) {
				t.Fatalf("input %d[%d]: %x, want %x", i, j,
					math.Float64bits(got[i][j]), math.Float64bits(inputs[i][j]))
			}
		}
	}
}

func TestWireResultsRoundTrip(t *testing.T) {
	results := []Result{
		{Class: 3, Scores: []float64{0.1, -2, 3.5}, BatchSize: 16},
		{Class: 0, Scores: []float64{9, 8, 7}, BatchSize: 0, Cached: true},
	}
	var buf bytes.Buffer
	if err := EncodeWireResults(&buf, results); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWireResults(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d results", len(got))
	}
	for i, res := range results {
		if got[i].Class != res.Class || got[i].BatchSize != res.BatchSize || got[i].Cached != res.Cached {
			t.Errorf("result %d header: %+v, want %+v", i, got[i], res)
		}
		for j := range res.Scores {
			if got[i].Scores[j] != res.Scores[j] {
				t.Errorf("result %d score %d: %g, want %g", i, j, got[i].Scores[j], res.Scores[j])
			}
		}
	}
}

func TestWireEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeWireRequest(&buf, nil); err == nil {
		t.Error("empty request encoded")
	}
	if err := EncodeWireRequest(&buf, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged request encoded")
	}
	// Encode enforces the decode-side bounds, so a request that encodes
	// never bounces off a decoder.
	if err := EncodeWireRequest(&buf, [][]float64{{}}); err == nil {
		t.Error("zero-dim request encoded")
	}
	if err := EncodeWireRequest(&buf, make([][]float64, MaxWireInputs+1)); err == nil {
		t.Error("oversize-count request encoded")
	}
	if err := EncodeWireResults(&buf, nil); err == nil {
		t.Error("empty response encoded")
	}
	if err := EncodeWireResults(&buf, []Result{{Scores: []float64{1}}, {Scores: []float64{1, 2}}}); err == nil {
		t.Error("ragged response encoded")
	}
}

// TestWireDecodeRejectsMalformed drives the decoder through the abuse
// cases the HTTP layer forwards to it: bad magic, hostile counts and dims,
// and truncation at every boundary.
func TestWireDecodeRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := EncodeWireRequest(&buf, [][]float64{{1, 2}, {3, 4}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := map[string][]byte{
		"empty":           {},
		"short header":    valid()[:8],
		"truncated body":  valid()[:len(valid())-1],
		"header only":     valid()[:12],
		"bad magic":       append([]byte("XXXX"), valid()[4:]...),
		"response as req": func() []byte { b := valid(); binary.LittleEndian.PutUint32(b, wireRespMagic); return b }(),
	}
	hostile := valid()
	binary.LittleEndian.PutUint32(hostile[4:], 1<<30) // count
	cases["hostile count"] = hostile
	hostile2 := valid()
	binary.LittleEndian.PutUint32(hostile2[8:], 1<<30) // dim
	cases["hostile dim"] = hostile2
	// count and dim individually in range, but multiplying to 2 GiB: the
	// product bound must refuse before allocating anything.
	hostile3 := valid()
	binary.LittleEndian.PutUint32(hostile3[4:], MaxWireInputs)
	binary.LittleEndian.PutUint32(hostile3[8:], MaxWireDim)
	cases["hostile product"] = hostile3
	zero := valid()
	binary.LittleEndian.PutUint32(zero[4:], 0)
	cases["zero count"] = zero

	for name, body := range cases {
		if _, err := DecodeWireRequest(bytes.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !strings.HasPrefix(err.Error(), "serve:") {
			t.Errorf("%s: error %q not from serve", name, err)
		}
		// The in-memory parser (stream-frame path) applies at least the
		// reader's checks, plus a trailing-bytes rejection of its own.
		var scratch WireRequestScratch
		if _, err := ParseWireRequest(body, &scratch); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	if _, err := ParseWireRequest(append(valid(), 0xAA), nil); err == nil {
		t.Error("trailing bytes: parsed without error")
	}
}

// TestWireResultsDecodeRejectsMalformed is the response-codec twin,
// covering every header and record field: magic, count, classes, the
// count×classes product bound, truncation at each boundary, plus the
// per-record hardening — class or batch_size past int32 (which would wrap
// negative on 32-bit platforms) and a cached flag other than 0 or 1.
func TestWireResultsDecodeRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		b, err := AppendWireResults(nil, []Result{
			{Class: 1, Scores: []float64{0.25, 0.75}, BatchSize: 4},
			{Class: 0, Scores: []float64{0.5, 0.5}, Cached: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	mut := func(f func(b []byte)) []byte {
		b := valid()
		f(b)
		return b
	}
	const rec0 = 12 // first record offset: class u32 | batch u32 | cached u8 | scores

	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid()[:8],
		"header only":    valid()[:12],
		"truncated body": valid()[:len(valid())-1],
		"bad magic":      mut(func(b []byte) { copy(b, "XXXX") }),
		"request as resp": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b, wireReqMagic)
		}),
		"zero count":    mut(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 0) }),
		"hostile count": mut(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 1<<30) }),
		"zero classes":  mut(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }),
		"hostile classes": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], 1<<30)
		}),
		"hostile product": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], MaxWireInputs)
			binary.LittleEndian.PutUint32(b[8:], MaxWireDim)
		}),
		"class wraps int32": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[rec0:], 0x80000000)
		}),
		"batch wraps int32": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[rec0+4:], 0xFFFFFFFF)
		}),
		"cached flag 2":    mut(func(b []byte) { b[rec0+8] = 2 }),
		"cached flag 0xFF": mut(func(b []byte) { b[rec0+8] = 0xFF }),
	}

	for name, body := range cases {
		if _, err := DecodeWireResults(bytes.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !strings.HasPrefix(err.Error(), "serve:") {
			t.Errorf("%s: error %q not from serve", name, err)
		}
		var scratch WireResultsScratch
		if _, err := ParseWireResults(body, &scratch); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	if _, err := ParseWireResults(append(valid(), 0x00), nil); err == nil {
		t.Error("trailing bytes: parsed without error")
	}
	// cached flag 1 (not just 0) must still decode — the hardening rejects
	// >1, not truthiness.
	if res, err := DecodeWireResults(bytes.NewReader(valid())); err != nil || !res[1].Cached {
		t.Errorf("valid response with cached=1: res=%v err=%v", res, err)
	}
}
