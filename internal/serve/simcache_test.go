package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/model"
)

// identityEmbed embeds an input as itself, narrowed to float32 — so the
// similarity cache's cosine matching operates directly on input space and
// the tests can construct inputs with known similarity.
func identityEmbed(input []float64, dst []float32) ([]float32, error) {
	for _, v := range input {
		dst = append(dst, float32(v))
	}
	return dst, nil
}

func newSimServer(t *testing.T, sc SimCacheOptions) *Server {
	t.Helper()
	m, err := model.FromNetwork("sim", "v1", testModel(7), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewModel(m, Options{
		Workers:  2,
		MaxBatch: 4,
		MaxDelay: time.Millisecond,
		SimCache: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestSimCacheHit: an input within the cosine threshold of a previously
// served one is answered from the similarity cache — Cached with a
// non-zero Similarity — with the cached scores; a dissimilar input is not.
func TestSimCacheHit(t *testing.T) {
	srv := newSimServer(t, SimCacheOptions{
		Embed:     identityEmbed,
		Capacity:  8,
		Threshold: 0.99,
	})
	base := make([]float64, 64)
	for i := range base {
		base[i] = float64(i%7) - 3
	}
	first, err := srv.Infer(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request served from an empty cache")
	}
	// A tiny perturbation keeps cosine ≈ 1: well above the threshold.
	near := append([]float64(nil), base...)
	near[0] += 1e-3
	hit, err := srv.Infer(context.Background(), near)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Similarity < 0.99 {
		t.Fatalf("near-duplicate not served from the similarity cache: %+v", hit)
	}
	if hit.Class != first.Class || len(hit.Scores) != len(first.Scores) {
		t.Fatalf("sim hit answered class %d, exact answer was %d", hit.Class, first.Class)
	}
	for i := range hit.Scores {
		if hit.Scores[i] != first.Scores[i] {
			t.Fatal("sim hit scores are not the cached scores")
		}
	}
	// An orthogonal input must miss.
	far := make([]float64, 64)
	for i := range far {
		far[i] = float64((i*13)%11) - 5
	}
	miss, err := srv.Infer(context.Background(), far)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cached {
		t.Fatalf("dissimilar input served from cache: %+v", miss)
	}
	st := srv.Stats()
	if st.SimCacheHits != 1 || st.SimCacheMisses != 2 {
		t.Fatalf("sim counters hits=%d misses=%d, want 1/2", st.SimCacheHits, st.SimCacheMisses)
	}
	if st.SimCacheEntries != 2 {
		t.Fatalf("%d ring entries, want 2 (the two misses)", st.SimCacheEntries)
	}
	if st.Requests != 3 {
		t.Fatalf("Requests=%d, want 3", st.Requests)
	}
}

// TestSimCacheAudit: with ValidateEvery=1 every hit is audited — the
// request runs exactly (so the caller never sees a cached result), and
// since identical inputs always agree with themselves, no false hits.
func TestSimCacheAudit(t *testing.T) {
	srv := newSimServer(t, SimCacheOptions{
		Embed:         identityEmbed,
		Capacity:      8,
		Threshold:     0.999,
		ValidateEvery: 1,
	})
	in := make([]float64, 64)
	for i := range in {
		in[i] = float64(i) / 64
	}
	for k := 0; k < 3; k++ {
		res, err := srv.Infer(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("audited hit must be served exactly, not from cache")
		}
	}
	st := srv.Stats()
	if st.SimCacheHits != 2 {
		t.Fatalf("SimCacheHits=%d, want 2 (every repeat audited)", st.SimCacheHits)
	}
	if st.SimCacheFalseHits != 0 {
		t.Fatalf("%d false hits on identical repeats", st.SimCacheFalseHits)
	}
	if st.Completed != 3 {
		t.Fatalf("Completed=%d, want 3 — audits must run the model", st.Completed)
	}
}

// TestSimCacheFalseHit forces a disagreement: a cached ring entry whose
// class differs from the exact answer for a similar-enough input must be
// counted as a false hit, and the caller still gets the exact answer.
func TestSimCacheFalseHit(t *testing.T) {
	srv := newSimServer(t, SimCacheOptions{
		Embed: func(input []float64, dst []float32) ([]float32, error) {
			// Constant embedding: everything is similar to everything,
			// guaranteeing class disagreements between distinct inputs.
			return append(dst, 1, 0, 0, 0), nil
		},
		Capacity:      4,
		Threshold:     0.9,
		ValidateEvery: 1,
	})
	inputs, want := testInputs(testModel(7), 8, 64)
	classes := map[int]bool{}
	for _, c := range want {
		classes[c] = true
	}
	if len(classes) < 2 {
		t.Skip("test inputs all map to one class; cannot force a disagreement")
	}
	for i, in := range inputs {
		res, err := srv.Infer(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != want[i] {
			t.Fatalf("audited request %d answered class %d, exact is %d", i, res.Class, want[i])
		}
	}
	st := srv.Stats()
	if st.SimCacheFalseHits == 0 {
		t.Fatal("distinct-class inputs behind a constant embedding produced no false hits")
	}
	if st.SimCacheHits < st.SimCacheFalseHits {
		t.Fatalf("false hits %d exceed hits %d", st.SimCacheFalseHits, st.SimCacheHits)
	}
}

// TestSimCacheOptionsValidate: malformed configurations must be rejected
// at construction, not at the first request.
func TestSimCacheOptionsValidate(t *testing.T) {
	m, err := model.FromNetwork("sim", "v1", testModel(7), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{SimCache: SimCacheOptions{Capacity: 4}},                                          // capacity without embed
		{SimCache: SimCacheOptions{Embed: identityEmbed, Capacity: 4, Threshold: 1.5}},    // threshold out of range
		{SimCache: SimCacheOptions{Embed: identityEmbed, Capacity: 4, ValidateEvery: -1}}, // negative audit rate
	}
	for i, o := range bad {
		if srv, err := NewModel(m, o); err == nil {
			srv.Close()
			t.Errorf("config %d accepted", i)
		}
	}
}
