package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory transport, the injector
// side wrapped with cfg.
func pipePair(t *testing.T, in *Injector) (faulty, clean net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.Wrap(a), b
}

// TestPassthrough pins that a zero schedule changes nothing: bytes round
// trip untouched.
func TestPassthrough(t *testing.T) {
	in := New(Config{Seed: 1})
	faulty, clean := pipePair(t, in)

	msg := []byte("hello fleet")
	go func() { _, _ = faulty.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(clean, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	if st := in.Stats(); st.Drops+st.Corrupted+st.Truncated+st.Delays != 0 {
		t.Fatalf("zero schedule injected faults: %+v", st)
	}
}

// TestDropAfterOps pins the deterministic kill: exactly the N-th write
// fails with the typed drop error, and the transport is closed.
func TestDropAfterOps(t *testing.T) {
	in := New(Config{Seed: 2, DropAfterOps: 3})
	faulty, clean := pipePair(t, in)
	go func() { _, _ = io.Copy(io.Discard, clean) }()

	msg := []byte("x")
	for i := 0; i < 2; i++ {
		if _, err := faulty.Write(msg); err != nil {
			t.Fatalf("write %d failed before schedule: %v", i, err)
		}
	}
	if _, err := faulty.Write(msg); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("3rd write: %v, want ErrInjectedDrop", err)
	}
	// The connection stays dead.
	if _, err := faulty.Write(msg); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("post-drop write: %v, want ErrInjectedDrop", err)
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

// TestCorruptionIsDeterministic pins the schedule contract: the same
// seed corrupts the same bytes of the same traffic, and a different seed
// draws a different schedule.
func TestCorruptionIsDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		in := New(Config{Seed: seed, CorruptProb: 0.5})
		faulty, clean := pipePair(t, in)
		msg := bytes.Repeat([]byte("abcdefgh"), 4)
		go func() { _, _ = faulty.Write(msg) }()
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(clean, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different schedules:\n%x\n%x", a, b)
	}
	orig := bytes.Repeat([]byte("abcdefgh"), 4)
	if bytes.Equal(a, orig) {
		t.Fatal("CorruptProb 0.5 never corrupted (schedule not applied?)")
	}
}

// TestTruncatedWriteDrops pins the truncation fault: a prefix is
// delivered, the writer sees the typed error, and the peer's next read
// fails (connection gone).
func TestTruncatedWriteDrops(t *testing.T) {
	in := New(Config{Seed: 3, TruncateProb: 1})
	faulty, clean := pipePair(t, in)

	msg := bytes.Repeat([]byte("frame"), 10)
	read := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		n, _ := clean.Read(buf)
		read <- buf[:n]
	}()
	if _, err := faulty.Write(msg); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("truncated write: %v, want ErrInjectedDrop", err)
	}
	got := <-read
	if len(got) == 0 || len(got) >= len(msg) {
		t.Fatalf("peer read %d bytes, want a proper prefix of %d", len(got), len(msg))
	}
	if st := in.Stats(); st.Truncated != 1 || st.Drops != 1 {
		t.Fatalf("stats after truncation: %+v", st)
	}
}

// TestDelay pins injected latency: with DelayProb 1 every operation
// sleeps the configured delay.
func TestDelay(t *testing.T) {
	in := New(Config{Seed: 4, DelayProb: 1, Delay: 20 * time.Millisecond})
	faulty, clean := pipePair(t, in)
	go func() { _, _ = io.Copy(io.Discard, clean) }()

	start := time.Now()
	if _, err := faulty.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥ 20ms injected delay", d)
	}
	if st := in.Stats(); st.Delays == 0 {
		t.Fatal("no delay counted")
	}
}

// TestDisarm pins the runtime gate: a disarmed injector passes bytes
// through and consumes no schedule.
func TestDisarm(t *testing.T) {
	in := New(Config{Seed: 5, DropProb: 1})
	in.Disarm()
	faulty, clean := pipePair(t, in)
	go func() { _, _ = io.Copy(io.Discard, clean) }()
	if _, err := faulty.Write([]byte("x")); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
	in.Arm()
	if _, err := faulty.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("armed DropProb=1 write: %v, want ErrInjectedDrop", err)
	}
}

// TestListenerWraps pins that accepted connections carry the schedule.
func TestListenerWraps(t *testing.T) {
	in := New(Config{Seed: 6, DropAfterOps: 1})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listen(base)
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer nc.Close()
		_, err = nc.Write([]byte("x"))
		done <- err
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := <-done; !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("accepted conn first op: %v, want ErrInjectedDrop", err)
	}
	if st := in.Stats(); st.Conns != 1 {
		t.Fatalf("conns = %d, want 1", st.Conns)
	}
}
