// Package faultinject is the serving stack's failure generator: wrapping
// net.Conn and net.Listener implementations that inject transport faults
// — connection drops, read/write latency, truncated writes, corrupted
// bytes — deterministically from a seeded schedule. The chaos suite in
// internal/router and the stream reconnect tests drive real protocol
// stacks through these wrappers, so the failure modes the router's
// circuit breaker and retry policy claim to handle are exercised by
// construction rather than asserted by hand-mocked errors.
//
// Determinism: every wrapped connection derives two private random
// streams (one per direction) from Config.Seed and the connection's
// accept/dial ordinal, and each I/O operation consumes draws from its
// stream in call order. Reads and writes on one connection are already
// serialized by their owners (a demux read loop, a mutex-guarded write
// path), so a fixed seed replays the same fault schedule for the same
// traffic shape, and a chaos failure reproduces under `go test -run ...
// -seed` instead of vanishing. The wrappers are nonetheless fully
// goroutine-safe: fault draws take a per-direction mutex, never the
// transport's.
package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the error a wrapped connection returns once its
// schedule has dropped it: typed, so tests can tell an injected failure
// from a real one.
var ErrInjectedDrop = errors.New("faultinject: connection dropped by schedule")

// Config is one injector's fault schedule. All probabilities are per
// I/O operation in [0, 1]; zero values inject nothing, so the zero
// Config is a transparent passthrough.
type Config struct {
	// Seed roots the deterministic per-connection fault streams.
	Seed int64
	// DropProb drops the connection (close + typed error) on an
	// operation.
	DropProb float64
	// DropAfterOps unconditionally drops the connection on the N-th
	// operation of either direction (0 disables) — the deterministic
	// "kill the connection mid-request" primitive.
	DropAfterOps int
	// DelayProb sleeps Delay before an operation — injected read/write
	// latency.
	DelayProb float64
	// Delay is the injected latency (default 1ms when DelayProb > 0).
	Delay time.Duration
	// CorruptProb flips one byte of an operation's payload: a corrupted
	// frame the codec must reject rather than misparse.
	CorruptProb float64
	// TruncateProb writes (or delivers) only a prefix of the operation's
	// buffer and then drops the connection — a frame cut off mid-flight.
	TruncateProb float64
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Conns     uint64 `json:"conns"`
	Drops     uint64 `json:"drops"`
	Delays    uint64 `json:"delays"`
	Corrupted uint64 `json:"corrupted"`
	Truncated uint64 `json:"truncated"`
}

// Injector hands out fault-wrapped connections. One Injector may back
// any number of listeners and dialers; its counters aggregate across all
// of them. Arm/Disarm gate injection at runtime, so a chaos test can run
// a clean warm-up phase over the same wrapped transports.
type Injector struct {
	cfg      Config
	connSeq  atomic.Uint64
	disarmed atomic.Bool

	conns     atomic.Uint64
	drops     atomic.Uint64
	delays    atomic.Uint64
	corrupted atomic.Uint64
	truncated atomic.Uint64
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Disarm makes every wrapped connection a passthrough until Arm; already
// scheduled draws are not consumed while disarmed, so the schedule
// resumes where it paused.
func (in *Injector) Disarm() { in.disarmed.Store(true) }

// Arm (re-)enables fault injection.
func (in *Injector) Arm() { in.disarmed.Store(false) }

// Stats snapshots the injector's fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Conns:     in.conns.Load(),
		Drops:     in.drops.Load(),
		Delays:    in.delays.Load(),
		Corrupted: in.corrupted.Load(),
		Truncated: in.truncated.Load(),
	}
}

// Wrap returns nc with this injector's fault schedule applied. Each call
// assigns the next connection ordinal, so wrap order (= accept/dial
// order) fixes the schedule.
func (in *Injector) Wrap(nc net.Conn) net.Conn {
	id := in.connSeq.Add(1)
	in.conns.Add(1)
	return &conn{
		Conn: nc,
		in:   in,
		r:    side{rng: rand.New(rand.NewSource(in.cfg.Seed ^ int64(id)<<1))},
		w:    side{rng: rand.New(rand.NewSource(in.cfg.Seed ^ int64(id)<<1 ^ 1))},
	}
}

// Listen wraps ln so every accepted connection carries the schedule.
func (in *Injector) Listen(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dialer returns a dial function for addr whose connections carry the
// schedule — the hook shape internal/serve/stream.ClientOptions.Dial
// expects.
func (in *Injector) Dialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(nc), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (ln *listener) Accept() (net.Conn, error) {
	nc, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return ln.in.Wrap(nc), nil
}

// side is one direction's private fault stream.
type side struct {
	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

// fault is one operation's scheduled outcome.
type fault struct {
	delay    bool
	corrupt  int // byte index to flip, -1 for none
	truncate int // bytes to deliver before dropping, -1 for none
	drop     bool
}

// conn applies the schedule to one transport connection.
type conn struct {
	net.Conn
	in      *Injector
	r, w    side
	dropped atomic.Bool
}

// draw consumes one operation's draws from s, in a fixed order so the
// schedule depends only on Seed, connection ordinal and op ordinal.
func (c *conn) draw(s *side, n int) fault {
	cfg := &c.in.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	f := fault{corrupt: -1, truncate: -1}
	if cfg.DropAfterOps > 0 && s.ops >= cfg.DropAfterOps {
		f.drop = true
	}
	if cfg.DropProb > 0 && s.rng.Float64() < cfg.DropProb {
		f.drop = true
	}
	if cfg.DelayProb > 0 && s.rng.Float64() < cfg.DelayProb {
		f.delay = true
	}
	if cfg.CorruptProb > 0 && s.rng.Float64() < cfg.CorruptProb && n > 0 {
		f.corrupt = s.rng.Intn(n)
	}
	if cfg.TruncateProb > 0 && s.rng.Float64() < cfg.TruncateProb && n > 1 {
		f.truncate = 1 + s.rng.Intn(n-1)
	}
	return f
}

// drop closes the transport and marks the connection dead.
func (c *conn) drop() error {
	if !c.dropped.Swap(true) {
		c.in.drops.Add(1)
		_ = c.Conn.Close()
	}
	return ErrInjectedDrop
}

func (c *conn) Read(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrInjectedDrop
	}
	if c.in.disarmed.Load() {
		return c.Conn.Read(p)
	}
	f := c.draw(&c.r, len(p))
	if f.drop {
		return 0, c.drop()
	}
	if f.delay {
		c.in.delays.Add(1)
		time.Sleep(c.in.cfg.Delay)
	}
	n, err := c.Conn.Read(p)
	if err != nil {
		return n, err
	}
	if f.truncate >= 0 && f.truncate < n {
		// Deliver a prefix, then kill the connection: the reader sees a
		// frame that stops mid-payload.
		c.in.truncated.Add(1)
		_ = c.drop()
		return f.truncate, nil
	}
	if f.corrupt >= 0 && f.corrupt < n {
		c.in.corrupted.Add(1)
		p[f.corrupt] ^= 0x5a
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrInjectedDrop
	}
	if c.in.disarmed.Load() {
		return c.Conn.Write(p)
	}
	f := c.draw(&c.w, len(p))
	if f.drop {
		return 0, c.drop()
	}
	if f.delay {
		c.in.delays.Add(1)
		time.Sleep(c.in.cfg.Delay)
	}
	if f.truncate >= 0 && f.truncate < len(p) {
		c.in.truncated.Add(1)
		n, _ := c.Conn.Write(p[:f.truncate])
		_ = c.drop()
		return n, ErrInjectedDrop
	}
	if f.corrupt >= 0 {
		// Corrupt a copy: the caller's buffer is borrowed, not owned.
		buf := make([]byte, len(p))
		copy(buf, p)
		buf[f.corrupt] ^= 0x5a
		c.in.corrupted.Add(1)
		return c.Conn.Write(buf)
	}
	return c.Conn.Write(p)
}

func (c *conn) Close() error {
	c.dropped.Store(true)
	return c.Conn.Close()
}
