package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/stream"
)

// TestRendezvousDeterminism pins the placement function's contract: the
// score is a pure function of (key, addr), every backend wins some share
// of a large key space, and removing one backend moves only the keys it
// owned — the minimal-disruption property that makes rendezvous worth
// having over modulo hashing.
func TestRendezvousDeterminism(t *testing.T) {
	addrs := []string{"10.0.0.1:9090", "10.0.0.2:9090", "10.0.0.3:9090"}
	if rendezvousScore("mnist@v1", addrs[0]) != rendezvousScore("mnist@v1", addrs[0]) {
		t.Fatal("rendezvousScore is not deterministic")
	}
	if rendezvousScore("mnist@v1", addrs[0]) == rendezvousScore("mnist@v2", addrs[0]) {
		t.Fatal("distinct keys collided; hash is ignoring the key")
	}

	winner := func(key string, pool []string) string {
		best, bestScore := "", uint64(0)
		for _, a := range pool {
			if s := rendezvousScore(key, a); best == "" || s > bestScore {
				best, bestScore = a, s
			}
		}
		return best
	}

	const keys = 300
	wins := map[string]int{}
	for i := 0; i < keys; i++ {
		wins[winner(fmt.Sprintf("model-%d", i), addrs)]++
	}
	for _, a := range addrs {
		if wins[a] == 0 {
			t.Errorf("backend %s won zero of %d keys; distribution is degenerate", a, keys)
		}
	}

	// Remove addrs[0]: keys it did not own must keep their winner.
	rest := addrs[1:]
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d", i)
		before := winner(key, addrs)
		after := winner(key, rest)
		if before == addrs[0] {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %s moved from %s to %s though its backend stayed", key, before, after)
		}
	}
	if moved != wins[addrs[0]] {
		t.Fatalf("moved %d keys, want exactly the %d owned by the removed backend", moved, wins[addrs[0]])
	}
}

// TestRouterAffinityPinsRoute drives an Affinity router at two live
// backends: every request for one route lands on its rendezvous owner,
// draining the owner fails the route over to the other backend, and
// undraining restores the original placement.
func TestRouterAffinityPinsRoute(t *testing.T) {
	regA := newFleetRegistry(t, nil, "v1")
	regB := newFleetRegistry(t, nil, "v1")
	fbA := startFleetBackend(t, regA, nil, stream.Options{})
	fbB := startFleetBackend(t, regB, nil, stream.Options{})

	rt := newTestRouter(t, Options{
		Backends:      []BackendConfig{fbA.config(), fbB.config()},
		Affinity:      true,
		ProbeInterval: time.Hour, // keep synthetic probes out of the request counters
	})

	fbs := []*fleetBackend{fbA, fbB}
	want := 0
	if rendezvousScore("mnist@v1", fbB.addr) > rendezvousScore("mnist@v1", fbA.addr) {
		want = 1
	}
	other := 1 - want

	base := []uint64{rt.backends[0].requests.Load(), rt.backends[1].requests.Load()}
	in := testInput(7)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.backends[want].requests.Load() - base[want]; got != 10 {
		t.Fatalf("rendezvous owner %s got %d of 10 requests", fbs[want].addr, got)
	}
	if got := rt.backends[other].requests.Load() - base[other]; got != 0 {
		t.Fatalf("non-owner %s got %d requests, want 0", fbs[other].addr, got)
	}

	// Drain the owner: the route must fail over to the survivor...
	rt.SetDraining(fbs[want].addr, true)
	if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
		t.Fatal(err)
	}
	if got := rt.backends[other].requests.Load() - base[other]; got != 1 {
		t.Fatalf("drained owner: survivor got %d requests, want 1", got)
	}
	// ...and undraining must restore the original placement.
	rt.SetDraining(fbs[want].addr, false)
	if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
		t.Fatal(err)
	}
	if got := rt.backends[want].requests.Load() - base[want]; got != 11 {
		t.Fatalf("undrained owner got %d requests, want 11", got)
	}
}

// callLog records which proxied calls reached one backend.
type callLog struct {
	mu    sync.Mutex
	calls []string
}

func (cl *callLog) add(s string) {
	cl.mu.Lock()
	cl.calls = append(cl.calls, s)
	cl.mu.Unlock()
}

func (cl *callLog) count() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.calls)
}

func (cl *callLog) last() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if len(cl.calls) == 0 {
		return ""
	}
	return cl.calls[len(cl.calls)-1]
}

// proxySurface mounts fake vector/embed endpoints that record and echo.
func proxySurface(cl *callLog) func(*http.ServeMux) {
	return func(mux *http.ServeMux) {
		rec := func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			cl.add(r.Method + " " + r.URL.Path + " " + string(body))
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ok":true}`)
		}
		mux.HandleFunc("PUT /v1/vectors/{collection}", rec)
		mux.HandleFunc("POST /v1/vectors/{collection}/search", rec)
		mux.HandleFunc("POST /v1/vectors/{collection}/train", rec)
		mux.HandleFunc("POST /v1/models/{id}/embed", rec)
	}
}

// TestRouterProxyCollectionAffinity proves the proxied vector tier's
// placement story end to end: a collection's upsert and its searches meet
// on the same backend (rendezvous owner by collection name), the /embed
// proxy forwards bodies verbatim, and killing the owner's HTTP surface
// fails the collection over to the next rank with the failover counted.
func TestRouterProxyCollectionAffinity(t *testing.T) {
	logs := make([]*callLog, 3)
	fbs := make([]*fleetBackend, 3)
	for i := range fbs {
		logs[i] = &callLog{}
		fbs[i] = startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{}, proxySurface(logs[i]))
	}
	rt := newTestRouter(t, Options{
		Backends: []BackendConfig{fbs[0].config(), fbs[1].config(), fbs[2].config()},
		// Freeze the health loops: the failover leg below kills an HTTP
		// surface and must observe the transport-error fallback, not a
		// scrape-driven eviction racing it.
		RefreshInterval: time.Hour,
		ProbeInterval:   time.Hour,
	})
	front := httptest.NewServer(rt.Mux(nil))
	defer front.Close()

	owner := func(key string) int {
		best, bestScore := -1, uint64(0)
		for i, fb := range fbs {
			if s := rendezvousScore(key, fb.addr); best < 0 || s > bestScore {
				best, bestScore = i, s
			}
		}
		return best
	}
	do := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, front.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := front.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	colOwner := owner("colA")
	if resp := do(http.MethodPut, "/v1/vectors/colA", `{"vectors":[[1,0]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert: status %d", resp.StatusCode)
	}
	if resp := do(http.MethodPost, "/v1/vectors/colA/search", `{"vector":[1,0],"k":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	if got := logs[colOwner].count(); got != 2 {
		t.Fatalf("collection owner %d saw %d calls, want upsert+search=2", colOwner, got)
	}
	for i, cl := range logs {
		if i != colOwner && cl.count() != 0 {
			t.Fatalf("backend %d saw %d calls for a collection it does not own", i, cl.count())
		}
	}
	if !strings.Contains(logs[colOwner].last(), `{"vector":[1,0],"k":1}`) {
		t.Fatalf("search body not forwarded verbatim: %q", logs[colOwner].last())
	}

	// /embed proxies by route with the same placement function.
	embedOwner := owner("mnist@v1")
	before := logs[embedOwner].count()
	if resp := do(http.MethodPost, "/v1/models/mnist@v1/embed", `{"input":[1]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("embed: status %d", resp.StatusCode)
	}
	if got := logs[embedOwner].count() - before; got != 1 {
		t.Fatalf("embed owner saw %d calls, want 1", got)
	}

	// Kill the collection owner's HTTP surface: the next request must
	// fail over to the runner-up and count the failover.
	counts := func() []int {
		out := make([]int, len(logs))
		for i, cl := range logs {
			out[i] = cl.count()
		}
		return out
	}
	beforeAll := counts()
	fbs[colOwner].hs.Close()
	if resp := do(http.MethodPost, "/v1/vectors/colA/search", `{"vector":[1,0],"k":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("failover search: status %d", resp.StatusCode)
	}
	served := -1
	for i, c := range counts() {
		if c > beforeAll[i] {
			served = i
		}
	}
	if served == colOwner || served < 0 {
		t.Fatalf("failover served by backend %d, want a surviving runner-up", served)
	}
	if st := rt.Stats(); st.ProxyFailovers == 0 {
		t.Fatal("failover not counted in Stats().ProxyFailovers")
	}
}

// TestRouterProxyNoBackend pins the empty-fleet answer: a backend with no
// HTTP surface cannot host the vector tier, so the proxy endpoints answer
// a typed 503 instead of hanging or panicking.
func TestRouterProxyNoBackend(t *testing.T) {
	fb := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:      []BackendConfig{{Addr: fb.addr}}, // bare: no HTTPURL
		ProbeInterval: time.Hour,
	})
	front := httptest.NewServer(rt.Mux(nil))
	defer front.Close()

	resp, err := front.Client().Post(front.URL+"/v1/vectors/colA/search", "application/json", strings.NewReader(`{"vector":[1],"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}
