package router

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/stream"
)

// The chaos suite (run on its own via `make chaos`, and as part of the
// normal test tier) drives the router through backend kills, revivals,
// drains, hot-swaps and injected transport faults under concurrent load.
// The contract it proves: every client-visible error is typed (conn-lost
// / going-away / 503-closed / 404-not-found / 429-overload), tail
// latency stays bounded while the fleet degrades, and the fleet heals
// itself — breakers re-close, reconnects land — with zero operator
// action.

// typedChaosError reports whether err is one of the typed shapes the
// fleet tier is allowed to surface while backends churn.
func typedChaosError(err error) bool {
	return typedUnavailable(err) || errors.Is(err, serve.ErrNotFound) || isOverload(err)
}

// chaosLoad runs n worker goroutines hammering route until stop closes,
// recording per-request wall time and classifying outcomes. Non-typed
// errors are captured verbatim (first few) — they fail the calling test.
type chaosLoad struct {
	successes atomic.Int64
	typed     atomic.Int64

	mu       sync.Mutex
	lats     []time.Duration
	nonTyped []error

	wg   sync.WaitGroup
	stop chan struct{}
}

func startChaosLoad(rt *Router, name, version string, in []float64, workers int) *chaosLoad {
	l := &chaosLoad{stop: make(chan struct{})}
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			local := make([]time.Duration, 0, 4096)
			for {
				select {
				case <-l.stop:
					l.mu.Lock()
					l.lats = append(l.lats, local...)
					l.mu.Unlock()
					return
				default:
				}
				start := time.Now()
				_, err := rt.Infer(ctx, name, version, in)
				local = append(local, time.Since(start))
				switch {
				case err == nil:
					l.successes.Add(1)
				case typedChaosError(err):
					l.typed.Add(1)
				default:
					l.mu.Lock()
					if len(l.nonTyped) < 5 {
						l.nonTyped = append(l.nonTyped, err)
					}
					l.mu.Unlock()
				}
			}
		}()
	}
	return l
}

func (l *chaosLoad) finish() {
	close(l.stop)
	l.wg.Wait()
}

// p99 returns the 99th-percentile latency of the recorded requests.
func (l *chaosLoad) p99() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

func (l *chaosLoad) checkNonTyped(t *testing.T) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, err := range l.nonTyped {
		t.Errorf("non-typed error surfaced under chaos: %v", err)
	}
}

// TestChaosKillRevive is the tentpole chaos scenario: three backends,
// continuous load, and a kill/revive cycle walking the fleet. Zero
// non-typed errors, bounded p99, and full self-healing — every breaker
// closed and a clean all-success round — at the end.
func TestChaosKillRevive(t *testing.T) {
	fbs := []*fleetBackend{
		startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{}),
		startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{}),
		startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{}),
	}
	cfgs := make([]BackendConfig, len(fbs))
	for i, fb := range fbs {
		cfgs[i] = fb.config()
	}
	rt := newTestRouter(t, Options{
		Backends:        cfgs,
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		Breaker:         BreakerConfig{Failures: 3, OpenBase: 25 * time.Millisecond, OpenMax: 200 * time.Millisecond},
		Seed:            11,
	})
	in := testInput(23)

	load := startChaosLoad(rt, "mnist", "v1", in, 8)
	for cycle := 0; cycle < 3; cycle++ {
		fb := fbs[cycle%len(fbs)]
		fb.kill()
		time.Sleep(300 * time.Millisecond)
		fb.revive()
		time.Sleep(250 * time.Millisecond)
	}
	load.finish()

	load.checkNonTyped(t)
	if n := load.successes.Load(); n < 200 {
		t.Fatalf("only %d successes under chaos; the healthy majority should have served far more", n)
	}
	if p := load.p99(); p > time.Second {
		t.Fatalf("p99 = %v under chaos, want bounded under 1s", p)
	}

	// Self-healing: every breaker re-closes and a clean round succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for _, row := range rt.Backends() {
			if row.Breaker == "closed" && !row.Down {
				healthy++
			}
		}
		if healthy == len(fbs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never fully healed: %+v", rt.Backends())
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
			t.Fatalf("post-chaos infer #%d: %v", i, err)
		}
	}
	t.Logf("chaos: %d ok, %d typed failures, p99=%v", load.successes.Load(), load.typed.Load(), load.p99())
}

// TestChaosFaultInjection soaks the routed data path in injected
// transport faults — probabilistic drops, delays and truncated frames on
// every backend's dialer — and requires the same contract: typed errors
// only, and recovery once the injector disarms.
func TestChaosFaultInjection(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	b2 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	inj := faultinject.New(faultinject.Config{
		Seed:         17,
		DropProb:     0.002,
		DelayProb:    0.02,
		Delay:        2 * time.Millisecond,
		TruncateProb: 0.002,
	})
	cfgs := []BackendConfig{b1.config(), b2.config()}
	cfgs[0].Dial = inj.Dialer(b1.addr)
	cfgs[1].Dial = inj.Dialer(b2.addr)
	rt := newTestRouter(t, Options{
		Backends:        cfgs,
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		Breaker:         BreakerConfig{Failures: 5, OpenBase: 25 * time.Millisecond, OpenMax: 200 * time.Millisecond},
		Seed:            12,
	})
	in := testInput(29)

	load := startChaosLoad(rt, "mnist", "v1", in, 6)
	time.Sleep(1200 * time.Millisecond)
	load.finish()
	load.checkNonTyped(t)
	if n := load.successes.Load(); n < 100 {
		t.Fatalf("only %d successes under fault injection", n)
	}
	if st := inj.Stats(); st.Drops == 0 {
		t.Fatalf("injector delivered no drops (%+v); the soak proved nothing", st)
	}

	// Disarm: the fleet must return to clean service.
	inj.Disarm()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for streak := 0; streak < 20; {
		_, err := rt.Infer(ctx, "mnist", "v1", in)
		if err == nil {
			streak++
			continue
		}
		streak = 0
		if !typedChaosError(err) {
			t.Fatalf("non-typed error after disarm: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after disarm: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDrainUnderHotSwap drives the GOAWAY drain satellite through
// the router while both backends hot-swap mnist v1 → v2 under load:
// alias traffic never fails, pinned-v1 traffic degrades only through
// typed errors and ends at 404, and the drained backend completes its
// in-flight window (Shutdown returns nil well inside its deadline).
func TestChaosDrainUnderHotSwap(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	b2 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config(), b2.config()},
		RefreshInterval: 25 * time.Millisecond,
		ProbeInterval:   50 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		Seed:            13,
	})
	ctx := context.Background()
	in := testInput(31)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var aliasOK, pinnedOK, pinnedGone, pinnedShed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rt.Infer(ctx, "mnist", "", in); err != nil {
					t.Errorf("alias request failed during drain + hot swap: %v", err)
					return
				}
				aliasOK.Add(1)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := rt.Infer(ctx, "mnist", "v1", in)
				switch {
				case err == nil:
					pinnedOK.Add(1)
				case errors.Is(err, serve.ErrNotFound):
					pinnedGone.Add(1)
				case errors.Is(err, serve.ErrClosed):
					// The drain window: v1's last holder is excluded but
					// its view has not refreshed away yet — known route,
					// no capacity, typed 503.
					pinnedShed.Add(1)
				default:
					t.Errorf("pinned request: %v, want success, 404 or 503", err)
					return
				}
			}
		}()
	}

	swapToV2 := func(fb *fleetBackend) {
		m2, err := model.FromNetwork("mnist", "v2", nn.Arch2(rand.New(rand.NewSource(42))), []int{121})
		if err != nil {
			t.Fatal(err)
		}
		if err := fb.reg.Register(m2); err != nil {
			t.Fatal(err)
		}
		if err := fb.reg.Retire("mnist", "v1"); err != nil {
			t.Fatal(err)
		}
	}

	time.Sleep(150 * time.Millisecond)
	swapToV2(b2)
	time.Sleep(150 * time.Millisecond)

	// Drain b1 through the router, then complete its GOAWAY handshake.
	if !rt.SetDraining(b1.addr, true) {
		t.Fatal("SetDraining(b1) found no backend")
	}
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := b1.srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain did not complete its in-flight window: %v", err)
	}
	drainTook := time.Since(start)
	swapToV2(b1)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if aliasOK.Load() == 0 || pinnedOK.Load() == 0 {
		t.Fatalf("load too thin: alias=%d pinnedOK=%d", aliasOK.Load(), pinnedOK.Load())
	}

	// End state: the alias serves v2, pinned v1 is a clean 404 fleet-wide.
	if _, err := rt.Infer(ctx, "mnist", "", in); err != nil {
		t.Fatalf("alias infer after swap: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := rt.Infer(ctx, "mnist", "v1", in)
		if errors.Is(err, serve.ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pinned v1 = %v, want ErrNotFound once views refresh", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	row := rt.Backends()[0]
	if !row.Draining || row.Pending != 0 {
		t.Fatalf("drained backend row %+v, want draining with zero pending", row)
	}
	t.Logf("drain+swap: alias=%d pinnedOK=%d pinnedGone=%d pinnedShed=%d drain=%v",
		aliasOK.Load(), pinnedOK.Load(), pinnedGone.Load(), pinnedShed.Load(), drainTook)
}

// TestChaosThroughputScales pins the horizontal-scaling claim the fleet
// tier exists for: with a compute-bound backend model, routed throughput
// over two backends must reach at least 1.6x a single backend through
// the same router code path.
func TestChaosThroughputScales(t *testing.T) {
	mkBackend := func() *fleetBackend {
		rng := rand.New(rand.NewSource(41))
		m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
		if err != nil {
			t.Fatal(err)
		}
		reg := serve.NewRegistry(serve.Options{Workers: 2, MaxBatch: 1})
		if err := reg.Register(slowModel{Model: m, delay: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		return startFleetBackend(t, reg, nil, stream.Options{})
	}
	b1, b2 := mkBackend(), mkBackend()
	in := testInput(37)

	measure := func(cfgs []BackendConfig) int64 {
		rt := newTestRouter(t, Options{
			Backends:        cfgs,
			RefreshInterval: 50 * time.Millisecond,
			ProbeInterval:   time.Hour,
			Seed:            14,
		})
		ctx := context.Background()
		const workers = 16
		var count atomic.Int64
		warmupOver := time.Now().Add(150 * time.Millisecond)
		end := warmupOver.Add(600 * time.Millisecond)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					now := time.Now()
					if now.After(end) {
						return
					}
					if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
						t.Errorf("infer during throughput measure: %v", err)
						return
					}
					if now.After(warmupOver) {
						count.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Close(cctx)
		return count.Load()
	}

	single := measure([]BackendConfig{b1.config()})
	double := measure([]BackendConfig{b1.config(), b2.config()})
	ratio := float64(double) / float64(single)
	t.Logf("throughput: single=%d double=%d ratio=%.2f", single, double, ratio)
	if single == 0 {
		t.Fatal("no single-backend throughput measured")
	}
	if ratio < 1.6 {
		t.Fatalf("2-backend throughput only %.2fx single (single=%d double=%d), want >= 1.6x",
			ratio, single, double)
	}
}
