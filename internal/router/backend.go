package router

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/serve/stream"
)

// BackendConfig names one cmd/serve process the router fronts.
type BackendConfig struct {
	// Addr is the backend's RPS2 listener ("host:port") — the data path.
	Addr string
	// HTTPURL is the backend's HTTP base URL ("http://host:port"),
	// scraped for the registry view (/v1/models) and health signals
	// (/metrics). Empty disables scraping: the backend is assumed to
	// hold every route and is health-checked by transport probes only.
	HTTPURL string
	// Dial overrides the stream transport dialer (fault-injection hook);
	// nil dials plain TCP to Addr.
	Dial func() (net.Conn, error)
}

// view is one backend's propagated registry snapshot: which routes it
// can answer, refreshed from /v1/models. Routes hold both the bare name
// (alias traffic — the backend's own registry applies its A/B split and
// latest alias, so PR 3 semantics survive the extra tier) and every
// pinned name@version.
type view struct {
	routes map[string]serve.ModelInfo
	models []serve.ModelInfo
}

// holds reports whether the view can answer the route.
//
//repro:noalloc
func (v *view) holds(route string) bool {
	_, ok := v.routes[route]
	return ok
}

// backend is the router's per-process state: a pool of reconnecting
// stream clients, the breaker, the propagated view and the health
// signals feeding it.
type backend struct {
	cfg BackendConfig

	clients []*stream.Client
	rr      atomic.Uint64 // round-robin cursor over clients
	pending atomic.Int64  // router-side in-flight, the least-loaded key

	br       *breaker
	draining atomic.Bool

	view atomic.Pointer[view] // nil until the first refresh succeeds

	requests atomic.Uint64 // routed requests sent (including retries landing here)
	failures atomic.Uint64 // transport/503 failures observed

	// Health-scrape state, owned by the health loop goroutine.
	prevLatency  metrics.HistSnapshot
	prevRequests float64
	prevShed     float64
	scrapeReady  bool

	// Scrape-derived signals for /v1/backends and the metrics gauges
	// (stored as µs / ppm to keep them in atomics).
	p99Micros   atomic.Int64
	shedPPM     atomic.Int64
	probeErr    atomic.Pointer[string]
	lastRefresh atomic.Int64 // unix nanos of the last successful view refresh
}

// inDims returns a route the backend holds and its input width, for the
// health prober's synthetic infer. ok is false until a view exists.
func (b *backend) probeTarget() (route string, dim int, ok bool) {
	v := b.view.Load()
	if v == nil || len(v.models) == 0 {
		return "", 0, false
	}
	m := v.models[0]
	return m.Name + "@" + m.Version, m.InDim, true
}

// holds reports whether the backend's current view answers the route. A
// backend with scraping disabled (no HTTPURL) optimistically holds
// everything — the breaker handles the consequences.
//
//repro:noalloc
func (b *backend) holds(route string) bool {
	if b.cfg.HTTPURL == "" {
		return true
	}
	v := b.view.Load()
	return v != nil && v.holds(route)
}

// client returns the next stream client in round-robin order.
//
//repro:noalloc
func (b *backend) client() *stream.Client {
	n := uint64(len(b.clients))
	if n == 1 {
		return b.clients[0]
	}
	return b.clients[b.rr.Add(1)%n]
}

// reqCarrier is the per-call scratch that keeps the routed hot path
// allocation-free: the single-input batch header and the reusable result
// slot a stream DoInto parses into.
type reqCarrier struct {
	inputs [1][]float64
	out    []serve.Result
}

var carrierPool = sync.Pool{
	New: func() any { return &reqCarrier{out: make([]serve.Result, 0, 1)} },
}

// do sends one routed request to this backend and reports the outcome to
// the breaker. scores is the caller's result buffer, reused when capacity
// suffices.
//
//repro:noalloc
func (b *backend) do(ctx context.Context, route string, input, scores []float64) (serve.Result, error) {
	b.pending.Add(1)
	b.requests.Add(1)
	cr := carrierPool.Get().(*reqCarrier)
	cr.inputs[0] = input
	out, err := b.client().DoInto(ctx, route, cr.inputs[:], cr.out[:0])
	cr.inputs[0] = nil
	var res serve.Result
	if err == nil && len(out) == 1 {
		res = out[0]
		res.Scores = append(scores[:0], out[0].Scores...)
	}
	cr.out = out[:0]
	carrierPool.Put(cr)
	b.pending.Add(-1)
	if err == nil {
		b.br.Success()
		return res, nil
	}
	if isBackendFailure(err) {
		b.failures.Add(1)
		b.br.Fail(time.Now())
	} else {
		// A non-backend failure (typed overload shed, caller
		// cancel/deadline, 404) neither closes nor indicts — but if this
		// request was admitted as the half-open probe it must release the
		// slot, or the breaker stays probing forever and the backend is
		// excluded from routing until restart.
		b.br.ReleaseProbe(time.Now())
	}
	return res, err
}

// BackendStatus is one backend's row in the router's /v1/backends
// answer.
type BackendStatus struct {
	Addr     string  `json:"addr"`
	Breaker  string  `json:"breaker"`
	Draining bool    `json:"draining"`
	Down     bool    `json:"down"`
	Pending  int64   `json:"pending"`
	Requests uint64  `json:"requests"`
	Failures uint64  `json:"failures"`
	Dials    uint64  `json:"dials"`
	Models   int     `json:"models"`
	P99      float64 `json:"p99_seconds,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	ProbeErr string  `json:"probe_error,omitempty"`
}

func (b *backend) status() BackendStatus {
	st := BackendStatus{
		Addr:     b.cfg.Addr,
		Breaker:  b.br.State().String(),
		Draining: b.draining.Load(),
		Down:     b.down(),
		Pending:  b.pending.Load(),
		Requests: b.requests.Load(),
		Failures: b.failures.Load(),
		P99:      float64(b.p99Micros.Load()) / 1e6,
		ShedRate: float64(b.shedPPM.Load()) / 1e6,
	}
	for _, c := range b.clients {
		st.Dials += c.Dials()
	}
	if v := b.view.Load(); v != nil {
		st.Models = len(v.models)
	}
	if e := b.probeErr.Load(); e != nil {
		st.ProbeErr = *e
	}
	return st
}

// down reports whether every stream client currently lacks a transport.
//
//repro:noalloc
func (b *backend) down() bool {
	for _, c := range b.clients {
		if !c.Down() {
			return false
		}
	}
	return len(b.clients) > 0
}

func (b *backend) close(ctx context.Context) {
	for _, c := range b.clients {
		_ = c.Close(ctx)
	}
}
