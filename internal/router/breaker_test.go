package router

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the three states along every edge.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerConfig{Failures: 3, OpenBase: 100 * time.Millisecond, OpenMax: time.Second}, 1)
	now := time.Unix(0, 0)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state %v", b.State())
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Fail(now)
	b.Fail(now)
	b.Success()
	b.Fail(now)
	b.Fail(now)
	if b.State() != BreakerClosed {
		t.Fatalf("state after reset + 2 fails: %v", b.State())
	}
	// The third consecutive failure opens.
	b.Fail(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive fails: %v", b.State())
	}
	// Open refuses probes before the deadline (backoff is jittered
	// within [base/2, 3*base/2], so before base/2 it is surely closed).
	if b.TryProbe(now.Add(49 * time.Millisecond)) {
		t.Fatal("probe admitted before any possible reopen deadline")
	}
	// After the jitter's upper bound it must admit exactly one probe.
	due := now.Add(151 * time.Millisecond)
	if !b.TryProbe(due) {
		t.Fatal("probe refused after reopen deadline")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after admitted probe: %v", b.State())
	}
	if b.TryProbe(due) {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe failure re-opens with a grown backoff.
	b.Fail(due)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe: %v", b.State())
	}
	// Second open: backoff doubles (jittered in [base, 3*base]).
	if b.TryProbe(due.Add(99 * time.Millisecond)) {
		t.Fatal("probe admitted before doubled backoff could elapse")
	}
	due2 := due.Add(601 * time.Millisecond)
	if !b.TryProbe(due2) {
		t.Fatal("probe refused after doubled backoff")
	}
	// Probe success closes and resets the backoff exponent.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe: %v", b.State())
	}
	// Re-open uses the base backoff again (exponent reset): after
	// 3*base/2 the probe must be admitted.
	b.Fail(due2)
	b.Fail(due2)
	b.Fail(due2)
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not re-open")
	}
	if !b.TryProbe(due2.Add(151 * time.Millisecond)) {
		t.Fatal("backoff exponent not reset by successful probe")
	}
}

// TestBreakerReleaseProbe pins the half-open slot release: a probe whose
// failure does not indict the backend must re-open the circuit and free
// the slot rather than leave it claimed forever.
func TestBreakerReleaseProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{Failures: 1, OpenBase: 100 * time.Millisecond, OpenMax: time.Second}, 3)
	now := time.Unix(0, 0)

	// Closed: ReleaseProbe is a no-op.
	b.ReleaseProbe(now)
	if b.State() != BreakerClosed {
		t.Fatalf("ReleaseProbe moved a closed breaker to %v", b.State())
	}

	b.Fail(now)
	due := now.Add(151 * time.Millisecond)
	if !b.TryProbe(due) {
		t.Fatal("probe refused after reopen deadline")
	}
	b.ReleaseProbe(due)
	if b.State() != BreakerOpen {
		t.Fatalf("state after released probe: %v", b.State())
	}
	// The slot is free again: after the grown backoff (jittered within
	// [base, 3*base]) another probe is admitted — nothing leaked.
	due2 := due.Add(601 * time.Millisecond)
	if !b.TryProbe(due2) {
		t.Fatal("probe slot leaked: TryProbe refused after released probe's backoff")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe: %v", b.State())
	}
}

// TestBreakerTrip pins the health checker's immediate trip: open at
// once, regardless of the failure count, idempotent while open.
func TestBreakerTrip(t *testing.T) {
	b := newBreaker(BreakerConfig{Failures: 100, OpenBase: 50 * time.Millisecond}, 2)
	now := time.Unix(0, 0)
	b.Trip(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state after trip: %v", b.State())
	}
	deadline1 := b.reopenAt
	b.Trip(now) // no-op while open: must not extend the deadline
	if !b.reopenAt.Equal(deadline1) {
		t.Fatal("trip while open moved the reopen deadline")
	}
}

// TestBreakerJitterVaries pins that reopen deadlines are actually
// jittered: across many opens the backoff is not constant.
func TestBreakerJitterVaries(t *testing.T) {
	now := time.Unix(0, 0)
	seen := make(map[time.Duration]bool)
	for seed := int64(0); seed < 16; seed++ {
		b := newBreaker(BreakerConfig{Failures: 1, OpenBase: 100 * time.Millisecond}, seed)
		b.Fail(now)
		seen[b.reopenAt.Sub(now)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 seeds produced %d distinct backoffs; jitter missing", len(seen))
	}
	for d := range seen {
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Errorf("jittered backoff %v outside [base/2, 3*base/2]", d)
		}
	}
}
