package router

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the backend takes traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend takes nothing until the reopen deadline.
	BreakerOpen
	// BreakerHalfOpen: one probe request is deciding the backend's fate.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterises a backend's circuit breaker. Zero fields
// take the defaults noted on each.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that opens a closed
	// circuit (default 5). Health-check failures and routed-request
	// transport failures both count; successes of either kind reset.
	Failures int
	// OpenBase is the first open interval (default 200ms). Each
	// consecutive re-open doubles it — jittered ±50% so a fleet of
	// routers does not probe a recovering backend in lockstep — up to
	// OpenMax (default 5s).
	OpenBase time.Duration
	OpenMax  time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.OpenBase <= 0 {
		c.OpenBase = 200 * time.Millisecond
	}
	if c.OpenMax <= 0 {
		c.OpenMax = 5 * time.Second
	}
	return c
}

// breaker is the three-state circuit on one backend:
//
//	closed --(Failures consecutive fails)--> open
//	open --(reopen deadline passes; next TryProbe)--> half-open
//	half-open --(probe succeeds)--> closed
//	half-open --(probe fails)--> open, with doubled backoff
//
// The "probe" is whichever request TryProbe admits first — a routed
// request or the health checker's synthetic infer; only one is in flight
// at a time, so a half-open backend sees a trickle, not a stampede.
type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	opens    int       // consecutive opens, drives the backoff exponent
	reopenAt time.Time // when an open circuit becomes probe-eligible
	probing  bool      // a half-open probe is outstanding
	rng      *rand.Rand
}

func newBreaker(cfg BreakerConfig, seed int64) *breaker {
	return &breaker{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// State reports the current position, surfacing open→half-open eligibility
// without mutating (the transition itself happens in TryProbe).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Closed reports whether normal traffic may route to the backend.
//
//repro:noalloc
func (b *breaker) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// TryProbe claims the half-open probe slot: on an open circuit past its
// reopen deadline (or a half-open one with no probe outstanding) it
// transitions to half-open, marks the probe taken and returns true. The
// caller MUST report the probe's outcome via Success or Fail — that
// report closes or re-opens the circuit and frees the slot.
//
//repro:noalloc
func (b *breaker) TryProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Before(b.reopenAt) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful request or probe.
//
//repro:noalloc
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
		b.opens = 0
		b.probing = false
	}
}

// Fail records a failed request or probe.
//
//repro:noalloc
func (b *breaker) Fail(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.open(now)
	}
}

// ReleaseProbe frees an outstanding half-open probe slot after a request
// whose failure does not indict the backend — a typed overload shed, a
// caller cancel/deadline, a 404. The verdict is "not proven healthy": the
// circuit re-opens with grown backoff exactly as a failed probe does,
// instead of leaking the slot and excluding the backend from routing
// forever. No-op in any other state, so callers may invoke it
// unconditionally on error.
//
//repro:noalloc
func (b *breaker) ReleaseProbe(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.probing = false
		b.open(now)
	}
}

// Trip opens the circuit immediately regardless of the failure count —
// the health checker uses it when a scrape shows the backend past its
// p99 or shed-rate thresholds.
func (b *breaker) Trip(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return
	}
	b.probing = false
	b.open(now)
}

// open transitions to BreakerOpen with jittered exponential backoff;
// callers hold mu.
//
//repro:noalloc
func (b *breaker) open(now time.Time) {
	backoff := b.cfg.OpenBase << b.opens
	if backoff > b.cfg.OpenMax || backoff <= 0 {
		backoff = b.cfg.OpenMax
	}
	// Jitter ±50%: reopen probes from independent routers decorrelate.
	//repro:lint-ignore noalloc rand.Int63n is pure arithmetic on the rng state
	backoff = backoff/2 + time.Duration(b.rng.Int63n(int64(backoff)))
	b.state = BreakerOpen
	b.fails = 0
	b.opens++
	b.reopenAt = now.Add(backoff)
}
