package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/serve/stream"
	"repro/internal/tensor"
)

// fleetBackend is one simulated cmd/serve process: a registry behind an
// RPS2 listener plus the HTTP surface (/v1/models, /metrics) the router
// scrapes. kill() force-closes the data path (the HTTP surface stays up,
// like a process whose stream listener died); revive() re-listens on the
// same address with a fresh stream server over the same registry.
type fleetBackend struct {
	t          *testing.T
	addr       string
	hs         *httptest.Server
	reg        *serve.Registry
	streamOpts stream.Options

	mu        sync.Mutex
	srv       *stream.Server
	serveDone chan error
}

// The variadic extra hooks let a test mount additional HTTP handlers on
// the backend's surface (the proxy tests serve fake vector endpoints).
func startFleetBackend(t *testing.T, reg *serve.Registry, mx *metrics.Registry, streamOpts stream.Options, extra ...func(*http.ServeMux)) *fleetBackend {
	t.Helper()
	fb := &fleetBackend{t: t, reg: reg, streamOpts: streamOpts}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb.addr = ln.Addr().String()
	fb.srv = stream.NewServer(reg, streamOpts)
	fb.serveDone = make(chan error, 1)
	go func(srv *stream.Server, done chan error) { done <- srv.Serve(ln) }(fb.srv, fb.serveDone)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"models": reg.Models()})
	})
	if mx != nil {
		mux.Handle("GET /metrics", mx.Handler())
	}
	for _, fn := range extra {
		fn(mux)
	}
	fb.hs = httptest.NewServer(mux)

	t.Cleanup(func() {
		fb.mu.Lock()
		srv, done := fb.srv, fb.serveDone
		fb.mu.Unlock()
		_ = srv.Close()
		<-done
		fb.hs.Close()
		reg.Close()
	})
	return fb
}

func (fb *fleetBackend) config() BackendConfig {
	return BackendConfig{Addr: fb.addr, HTTPURL: fb.hs.URL}
}

// kill force-closes the stream server without draining — in-flight and
// future requests see a dropped connection.
func (fb *fleetBackend) kill() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	_ = fb.srv.Close()
	<-fb.serveDone
}

// revive re-listens on the backend's original address with a new stream
// server over the same registry; reconnecting clients find it again.
func (fb *fleetBackend) revive() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	ln, err := net.Listen("tcp", fb.addr)
	if err != nil {
		fb.t.Fatalf("revive %s: %v", fb.addr, err)
	}
	fb.srv = stream.NewServer(fb.reg, fb.streamOpts)
	fb.serveDone = make(chan error, 1)
	go func(srv *stream.Server, done chan error) { done <- srv.Serve(ln) }(fb.srv, fb.serveDone)
}

// newFleetRegistry builds a registry serving the given versions of
// "mnist" (Arch-2, 121 features). The rng is re-seeded per registry so
// two backends built with the same version list hold identical weights —
// routed answers must then match regardless of placement.
func newFleetRegistry(t testing.TB, mx *metrics.Registry, versions ...string) *serve.Registry {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	reg := serve.NewRegistry(serve.Options{Workers: 2, MaxBatch: 8, Metrics: mx})
	for _, v := range versions {
		m, err := model.FromNetwork("mnist", v, nn.Arch2(rng), []int{121})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func testInput(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]float64, 121)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	return in
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Close(ctx)
	})
	return rt
}

// TestRouterRoutesByView pins the routing tentpole: pinned routes land
// only on backends whose propagated view holds them, bare-name routes
// work, Models merges and dedupes, unknown routes are a typed 404, and
// the router serves as a stream.Backend behind its own RPS2 front end.
func TestRouterRoutesByView(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	b2 := startFleetBackend(t, newFleetRegistry(t, nil, "v1", "v2"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config(), b2.config()},
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   time.Hour, // keep synthetic probes out of the request counters
		Seed:            1,
	})
	ctx := context.Background()
	in := testInput(7)

	// mnist@v2 exists only on b2: every pinned request must land there,
	// answering exactly what b2's registry answers in-process.
	ref, err := b2.reg.Infer(ctx, "mnist", "v2", in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := rt.Infer(ctx, "mnist", "v2", in)
		if err != nil {
			t.Fatalf("routed mnist@v2 #%d: %v", i, err)
		}
		if len(res.Scores) != len(ref.Scores) {
			t.Fatalf("scores len %d, want %d", len(res.Scores), len(ref.Scores))
		}
		for j := range res.Scores {
			if res.Scores[j] != ref.Scores[j] {
				t.Fatalf("score[%d] = %v, want %v", j, res.Scores[j], ref.Scores[j])
			}
		}
	}
	rows := rt.Backends()
	if rows[0].Requests != 0 || rows[1].Requests != 10 {
		t.Fatalf("pinned v2 placement: b1=%d b2=%d requests, want 0/10", rows[0].Requests, rows[1].Requests)
	}

	// The bare name routes wherever any version lives.
	if _, err := rt.Infer(ctx, "mnist", "", in); err != nil {
		t.Fatalf("bare-name route: %v", err)
	}

	// Models merges both views and dedupes the shared mnist@v1.
	models := rt.Models()
	ids := make(map[string]bool)
	for _, m := range models {
		ids[m.Name+"@"+m.Version] = true
	}
	if len(models) != 2 || !ids["mnist@v1"] || !ids["mnist@v2"] {
		t.Fatalf("merged models = %v, want exactly {mnist@v1, mnist@v2}", ids)
	}

	// Unknown route: typed 404, never 503 — nothing holds it anywhere.
	_, err = rt.Infer(ctx, "nope", "", in)
	if !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("unknown route error = %v, want serve.ErrNotFound identity", err)
	}
	if errors.Is(err, serve.ErrClosed) {
		t.Fatal("unknown route error carries ErrClosed identity; 404 and 503 must not blur")
	}

	// The router is a stream.Backend: an RPS2 server fronting it serves
	// the fleet over the same wire protocol the backends speak.
	front := stream.NewServer(rt, stream.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	frontDone := make(chan error, 1)
	go func() { frontDone <- front.Serve(ln) }()
	cl, err := stream.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = cl.Close(cctx)
		_ = front.Close()
		<-frontDone
	}()
	out, err := cl.Do(ctx, "mnist@v2", [][]float64{in})
	if err != nil {
		t.Fatalf("infer through routed RPS2 front end: %v", err)
	}
	for j := range out[0].Scores {
		if out[0].Scores[j] != ref.Scores[j] {
			t.Fatalf("front-end score[%d] = %v, want %v", j, out[0].Scores[j], ref.Scores[j])
		}
	}
}

// TestRouterRetriesOnConnLoss pins the bounded-retry satellite with the
// fault injector on one backend's dialer: its connection drops after a
// fixed op count, over and over, while concurrent load keeps calls in
// flight — so drops catch live requests — yet no routed request may
// surface an error: each loss is retried once on the other backend.
func TestRouterRetriesOnConnLoss(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	b2 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	inj := faultinject.New(faultinject.Config{Seed: 7, DropAfterOps: 30})
	cfgs := []BackendConfig{b1.config(), b2.config()}
	cfgs[0].Dial = inj.Dialer(b1.addr)
	rt := newTestRouter(t, Options{
		Backends:        cfgs,
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   time.Hour,
		Seed:            2,
	})
	ctx := context.Background()
	in := testInput(11)
	ref, err := b2.reg.Infer(ctx, "mnist", "v1", in)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := rt.Infer(ctx, "mnist", "v1", in)
				if err != nil {
					errCh <- err
					continue
				}
				if len(res.Scores) != len(ref.Scores) {
					errCh <- fmt.Errorf("routed scores len %d, want %d", len(res.Scores), len(ref.Scores))
					continue
				}
				// Tolerance, not equality: under concurrent load requests
				// batch together, and batched accumulation order may move
				// the last ulp relative to the idle batch-of-1 reference.
				for j := range res.Scores {
					if d := res.Scores[j] - ref.Scores[j]; d > 1e-9 || d < -1e-9 {
						errCh <- fmt.Errorf("score[%d] = %v, want %v", j, res.Scores[j], ref.Scores[j])
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("routed infer surfaced %v; retries must absorb injected drops", err)
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded despite deterministic connection drops; inj=%+v rows=%+v", inj.Stats(), rt.Backends())
	}
	if st.NoBackend != 0 {
		t.Fatalf("no_backend = %d, want 0: the healthy backend never went away", st.NoBackend)
	}
	if rows := rt.Backends(); rows[0].Failures == 0 {
		t.Fatal("faulted backend recorded no failures")
	}
	inj.Disarm()
}

// typedUnavailable reports whether a routed error during an outage is one
// of the allowed typed shapes — transport loss or 503-unavailable. An
// untyped error during fleet faults is a bug.
func typedUnavailable(err error) bool {
	return errors.Is(err, stream.ErrConnLost) ||
		errors.Is(err, stream.ErrGoingAway) ||
		errors.Is(err, serve.ErrClosed)
}

// TestRouterBreakerOpensAndRecovers kills the only backend, watches the
// circuit open from probe failures, requires every in-outage error to be
// typed, then revives the backend on the same address and waits for the
// breaker's half-open probe to re-close the circuit with zero operator
// intervention.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config()},
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		Breaker:         BreakerConfig{Failures: 2, OpenBase: 25 * time.Millisecond, OpenMax: 100 * time.Millisecond},
		Seed:            3,
	})
	ctx := context.Background()
	in := testInput(13)

	if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
		t.Fatalf("healthy routed infer: %v", err)
	}

	b1.kill()

	// The probe loop must open the circuit on its own.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Backends()[0].Breaker != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened after kill; status %+v", rt.Backends()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Requests during the outage: always an error, always typed.
	for i := 0; i < 20; i++ {
		_, err := rt.Infer(ctx, "mnist", "v1", in)
		if err == nil {
			t.Fatal("routed infer succeeded against a dead fleet")
		}
		if !typedUnavailable(err) {
			t.Fatalf("outage error #%d not typed: %v", i, err)
		}
	}

	b1.revive()

	// Recovery is automatic: reconnect + half-open probe re-close the
	// circuit and traffic flows again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, err := rt.Infer(ctx, "mnist", "v1", in)
		if err == nil {
			break
		}
		if !typedUnavailable(err) {
			t.Fatalf("post-revive error not typed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after revive; status %+v", rt.Backends()[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
	for rt.Backends()[0].Breaker != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed; status %+v", rt.Backends()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterHalfOpenProbeSlotReleased pins the probe-slot release: a
// routed request admitted as the half-open probe that then fails for a
// non-backend reason (here: the caller's own cancelled context) must
// free the slot. Before the fix the breaker stayed half-open with the
// probe claimed forever — the health loop's TryProbe kept refusing and
// the backend was excluded from routing until restart.
func TestRouterHalfOpenProbeSlotReleased(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config()},
		RefreshInterval: 50 * time.Millisecond,
		// The health prober must not be the one reclaiming the slot.
		ProbeInterval: time.Hour,
		Breaker:       BreakerConfig{Failures: 1, OpenBase: 10 * time.Millisecond, OpenMax: 20 * time.Millisecond},
		Seed:          6,
	})
	ctx := context.Background()
	in := testInput(23)
	if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
		t.Fatalf("healthy routed infer: %v", err)
	}

	// Trip the circuit, wait past the jittered backoff ceiling (1.5 *
	// OpenMax = 30ms), then route with an already-cancelled context:
	// pick() admits it as the half-open probe and it fails without
	// indicting the backend.
	rt.backends[0].br.Trip(time.Now())
	time.Sleep(50 * time.Millisecond)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := rt.Infer(cctx, "mnist", "v1", in); err == nil {
		t.Fatal("infer with cancelled context succeeded")
	}

	// The slot must be free again: a later request claims it, succeeds,
	// and re-closes the circuit with zero operator intervention.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := rt.Infer(ctx, "mnist", "v1", in); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe slot leaked; status %+v", rt.Backends()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	for rt.Backends()[0].Breaker != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed; status %+v", rt.Backends()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryBudgetDisabled pins that a negative RetryBudget disables
// retries outright: the bucket starts empty and never accrues, so not
// even the burst allowance leaks retries through.
func TestRetryBudgetDisabled(t *testing.T) {
	var tb tokenBucket
	tb.init(-1, 10)
	if tb.take() {
		t.Fatal("disabled retry budget granted its initial burst")
	}
	for i := 0; i < 1000; i++ {
		tb.accrue()
	}
	if tb.take() {
		t.Fatal("disabled retry budget accrued tokens")
	}
}

// TestModelsFreshestWins pins the duplicate-id merge rule in Models():
// the row from the backend whose view refreshed most recently wins,
// regardless of configuration order.
func TestModelsFreshestWins(t *testing.T) {
	mk := func(weight float64, ts int64) *backend {
		b := &backend{}
		b.view.Store(&view{models: []serve.ModelInfo{
			{Name: "mnist", Version: "v1", InDim: 121, Weight: weight},
		}})
		b.lastRefresh.Store(ts)
		return b
	}
	// Stale view first in config order with a distinguishable Weight: the
	// fresher second backend's row must win the merge anyway.
	rt := &Router{backends: []*backend{mk(0.25, 100), mk(0.75, 200)}}
	models := rt.Models()
	if len(models) != 1 {
		t.Fatalf("merged models = %d rows, want 1", len(models))
	}
	if models[0].Weight != 0.75 {
		t.Fatalf("duplicate winner Weight = %v, want 0.75 (freshest view)", models[0].Weight)
	}
	// Same views, freshness reversed: now the first backend wins.
	rt = &Router{backends: []*backend{mk(0.25, 300), mk(0.75, 200)}}
	if models = rt.Models(); models[0].Weight != 0.25 {
		t.Fatalf("duplicate winner Weight = %v, want 0.25 (freshest view)", models[0].Weight)
	}
}

// slowModel delays every batch, so admission limits reliably engage.
type slowModel struct {
	model.Model
	delay time.Duration
}

func (m slowModel) Forward(ws *nn.Workspace, batch *tensor.Tensor) *tensor.Tensor {
	time.Sleep(m.delay)
	return m.Model.Forward(ws, batch)
}

func (m slowModel) Replicate() (model.Model, error) {
	r, err := m.Model.Replicate()
	if err != nil {
		return nil, err
	}
	return slowModel{Model: r, delay: m.delay}, nil
}

// TestRouterOverloadPassthrough pins the no-retry rule for typed sheds: a
// backend's *admission.OverloadError reaches the caller with its
// RetryAfter hint intact, consumes no retry budget, and does not move the
// breaker — shedding is the backend working as designed.
func TestRouterOverloadPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, err := model.FromNetwork("mnist", "v1", nn.Arch2(rng), []int{121})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{Workers: 2, MaxBatch: 1})
	if err := reg.Register(slowModel{Model: m, delay: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctrl := admission.New(admission.Config{MaxInflight: 1, RetryAfter: 10 * time.Millisecond})
	b1 := startFleetBackend(t, reg, nil, stream.Options{Admission: ctrl})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config()},
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   time.Hour,
		Seed:            4,
	})
	ctx := context.Background()
	in := testInput(17)

	var wg sync.WaitGroup
	var sheds, successes atomic64
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := rt.Infer(ctx, "mnist", "v1", in)
			if err == nil {
				successes.add(1)
				return
			}
			var oe *admission.OverloadError
			if !errors.As(err, &oe) {
				t.Errorf("overloaded infer error = %v, want *admission.OverloadError", err)
				return
			}
			if oe.RetryAfter <= 0 {
				t.Errorf("OverloadError lost its RetryAfter hint: %+v", oe)
			}
			sheds.add(1)
		}()
	}
	wg.Wait()
	if sheds.load() == 0 {
		t.Fatal("no typed sheds under 12x concurrency against MaxInflight=1")
	}
	if successes.load() == 0 {
		t.Fatal("no successes: overload must shed excess, not everything")
	}
	if st := rt.Stats(); st.Retries != 0 {
		t.Fatalf("retries = %d, want 0: typed overload must never be retried", st.Retries)
	}
	if row := rt.Backends()[0]; row.Breaker != "closed" || row.Failures != 0 {
		t.Fatalf("overload moved the breaker: %+v", row)
	}
}

// atomic64 is a tiny test counter (avoids importing sync/atomic names
// into the assertion noise).
type atomic64 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic64) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestRouterDrainExcludesBackend pins the drain admin semantics: a
// draining backend stops receiving new routed work immediately, traffic
// fails over with zero errors, undrain restores it, and draining the
// whole fleet yields the typed 503 — not a 404, the routes still exist.
func TestRouterDrainExcludesBackend(t *testing.T) {
	b1 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	b2 := startFleetBackend(t, newFleetRegistry(t, nil, "v1"), nil, stream.Options{})
	rt := newTestRouter(t, Options{
		Backends:        []BackendConfig{b1.config(), b2.config()},
		RefreshInterval: 50 * time.Millisecond,
		ProbeInterval:   time.Hour,
		Seed:            5,
	})
	ctx := context.Background()
	in := testInput(19)

	// Unloaded sequential traffic ties on pending and lands on the first
	// backend — a fixed baseline for the exclusion assertion.
	for i := 0; i < 10; i++ {
		if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
			t.Fatalf("baseline infer: %v", err)
		}
	}
	if rows := rt.Backends(); rows[0].Requests != 10 {
		t.Fatalf("baseline placement: %d on b1, want 10", rows[0].Requests)
	}

	if !rt.SetDraining(b1.addr, true) {
		t.Fatal("SetDraining: backend not found")
	}
	for i := 0; i < 20; i++ {
		if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
			t.Fatalf("infer during drain failover: %v", err)
		}
	}
	rows := rt.Backends()
	if !rows[0].Draining {
		t.Fatal("status row does not show draining")
	}
	if rows[0].Requests != 10 {
		t.Fatalf("draining backend received %d new requests", rows[0].Requests-10)
	}
	if rows[1].Requests != 20 {
		t.Fatalf("failover backend has %d requests, want 20", rows[1].Requests)
	}

	// Whole fleet draining: known route, no capacity — typed 503.
	rt.SetDraining(b2.addr, true)
	_, err := rt.Infer(ctx, "mnist", "v1", in)
	if !errors.Is(err, serve.ErrClosed) || errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("fully-drained fleet error = %v, want ErrClosed identity without ErrNotFound", err)
	}

	// Undrain restores routing.
	rt.SetDraining(b1.addr, false)
	if _, err := rt.Infer(ctx, "mnist", "v1", in); err != nil {
		t.Fatalf("infer after undrain: %v", err)
	}
	if rows := rt.Backends(); rows[0].Requests != 11 {
		t.Fatalf("undrained backend has %d requests, want 11", rows[0].Requests)
	}

	if rt.SetDraining("203.0.113.1:1", true) {
		t.Fatal("SetDraining accepted an unknown address")
	}
}
