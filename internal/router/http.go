package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"mime"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// Mux builds the router's HTTP front end — the same /v1 surface a single
// cmd/serve exposes, answered by the fleet, plus the fleet-only admin
// endpoints:
//
//	POST /v1/models/{id}/infer   routed inference (JSON or wire v1)
//	POST /v1/models/{id}/embed   proxied to the route's rendezvous owner
//	PUT  /v1/vectors/{collection}         proxied to the collection's owner
//	POST /v1/vectors/{collection}/search  proxied to the collection's owner
//	POST /v1/vectors/{collection}/train   proxied to the collection's owner
//	GET  /v1/models              merged, deduplicated fleet view
//	GET  /v1/backends            per-backend health/breaker/drain status
//	POST /v1/backends/{addr}/drain    exclude a backend from routing
//	POST /v1/backends/{addr}/undrain  restore it
//	GET  /stats                  router counters
//	GET  /healthz                liveness + backend summary
//	GET  /metrics                when mx is non-nil
func (rt *Router) Mux(mx *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if mx != nil {
		mux.Handle("GET /metrics", mx.Handler())
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		healthy := 0
		for _, b := range rt.backends {
			if b.br.Closed() && !b.draining.Load() {
				healthy++
			}
		}
		status := http.StatusOK
		if healthy == 0 {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"status":   map[bool]string{true: "ok", false: "no-backends"}[healthy > 0],
			"backends": len(rt.backends),
			"healthy":  healthy,
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": rt.Models()})
	})
	mux.HandleFunc("POST /v1/models/{id}/infer", func(w http.ResponseWriter, r *http.Request) {
		name, version := model.ParseID(r.PathValue("id"))
		rt.handleInfer(w, r, name, version)
	})
	// HTTP-proxied endpoints: embeddings and the vector tier are stateful
	// on the backend (embed models, collections), so the router forwards
	// them whole to the rendezvous-ranked owner rather than re-implement
	// them. Keyed on the route for /embed and on the collection for
	// /v1/vectors, so one collection's upserts and searches meet on the
	// same backend.
	mux.HandleFunc("POST /v1/models/{id}/embed", func(w http.ResponseWriter, r *http.Request) {
		if !rt.proxyHTTP(w, r, r.PathValue("id")) {
			writeError(w, ErrNoBackend)
		}
	})
	proxyByCollection := func(w http.ResponseWriter, r *http.Request) {
		if !rt.proxyHTTP(w, r, r.PathValue("collection")) {
			writeError(w, ErrNoBackend)
		}
	}
	mux.HandleFunc("PUT /v1/vectors/{collection}", proxyByCollection)
	mux.HandleFunc("POST /v1/vectors/{collection}/search", proxyByCollection)
	mux.HandleFunc("POST /v1/vectors/{collection}/train", proxyByCollection)
	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"backends": rt.Backends()})
	})
	drain := func(draining bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			addr := r.PathValue("addr")
			if !rt.SetDraining(addr, draining) {
				writeJSON(w, http.StatusNotFound, map[string]string{"error": "no backend " + addr})
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"addr": addr, "draining": draining})
		}
	}
	mux.HandleFunc("POST /v1/backends/{addr}/drain", drain(true))
	mux.HandleFunc("POST /v1/backends/{addr}/undrain", drain(false))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Stats())
	})
	return mux
}

// inferRequest mirrors the cmd/serve JSON body: one input or a list.
type inferRequest struct {
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// Abuse bounds, same contract as the single-process front end: the wire
// format's limits bound both codecs.
const (
	maxInputsPerRequest = serve.MaxWireInputs
	maxBodyBytes        = serve.MaxWireBytes
)

// handleInfer answers routed inference posts in JSON or wire-format v1,
// exactly the single-process surface — a client cannot tell a router
// from a backend by its responses.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request, name, version string) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == serve.WireContentType {
		inputs, err := serve.DecodeWireRequest(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		results, err := rt.inferAll(r.Context(), name, version, inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", serve.WireContentType)
		if err := serve.EncodeWireResults(w, results); err != nil {
			log.Printf("router: encoding wire response: %v", err)
		}
		return
	}

	var req inferRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) > maxInputsPerRequest {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("%d inputs in one request, limit %d", len(req.Inputs), maxInputsPerRequest),
		})
		return
	}
	if req.Input != nil && len(req.Inputs) > 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body sets both "input" and "inputs"; use one`})
		return
	}
	switch {
	case req.Input != nil:
		res, err := rt.Infer(r.Context(), name, version, req.Input)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case len(req.Inputs) > 0:
		results, err := rt.inferAll(r.Context(), name, version, req.Inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `need "input" or "inputs"`})
	}
}

// inferAll routes every input concurrently — each may land on a
// different backend — and returns results in input order, or the first
// error.
func (rt *Router) inferAll(ctx context.Context, name, version string, inputs [][]float64) ([]serve.Result, error) {
	results := make([]serve.Result, len(inputs))
	errs := make([]error, len(inputs))
	done := make(chan struct{}, len(inputs))
	for i, in := range inputs {
		go func(i int, in []float64) {
			results[i], errs[i] = rt.Infer(ctx, name, version, in)
			done <- struct{}{}
		}(i, in)
	}
	for range inputs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// statusFor maps routed errors to HTTP statuses: the stream client's
// typed errors carry serve sentinel identities across the wire, so the
// mapping matches the single-process front end's exactly.
func statusFor(err error) int {
	var oe *admission.OverloadError
	switch {
	case errors.As(err, &oe):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	var oe *admission.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		secs := int(oe.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, statusFor(err), errorBody(err))
}

func errorBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("router: encoding response: %v", err)
	}
}
