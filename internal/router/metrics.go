package router

import "repro/internal/metrics"

// Router metric family names. Like the serving layers' families these
// are callback-backed: every series reads the same atomics Stats and
// Backends read, so /metrics, /v1/backends and the JSON stats can never
// disagree.
const (
	// MetricRouted counts requests entering the routing decision.
	MetricRouted = "repro_router_requests_total"
	// MetricRetries counts requests re-sent to a second backend.
	MetricRetries = "repro_router_retries_total"
	// MetricNoBackend counts requests refused because no healthy
	// backend held the route.
	MetricNoBackend = "repro_router_no_backend_total"
	// MetricProxied counts HTTP-proxied calls (vector tier, /embed) that
	// reached a backend; MetricProxyFailovers counts the transport
	// failures that fell to the next rendezvous rank.
	MetricProxied        = "repro_router_proxied_total"
	MetricProxyFailovers = "repro_router_proxy_failovers_total"
	// MetricBackendRequests/Failures/Pending are per-backend series
	// labelled backend="addr".
	MetricBackendRequests = "repro_router_backend_requests_total"
	MetricBackendFailures = "repro_router_backend_failures_total"
	MetricBackendPending  = "repro_router_backend_pending"
	// MetricBreakerState is 0 closed, 1 half-open, 2 open.
	MetricBreakerState = "repro_router_breaker_state"
	// MetricBackendDraining is 1 while the backend is excluded for
	// drain.
	MetricBackendDraining = "repro_router_backend_draining"
	// MetricBackendP99 is the scrape-derived windowed p99 in seconds.
	MetricBackendP99 = "repro_router_backend_p99_seconds"
	// MetricBackendShedRate is the scrape-derived windowed shed rate.
	MetricBackendShedRate = "repro_router_backend_shed_rate"
)

func (rt *Router) registerMetrics(r *metrics.Registry) {
	r.CounterFunc(MetricRouted, "Requests entering the routing decision.",
		func() float64 { return float64(rt.routed.Load()) })
	r.CounterFunc(MetricRetries, "Requests retried on a different backend.",
		func() float64 { return float64(rt.retries.Load()) })
	r.CounterFunc(MetricNoBackend, "Requests refused with no healthy backend for the route.",
		func() float64 { return float64(rt.noBackend.Load()) })
	r.CounterFunc(MetricProxied, "HTTP-proxied vector/embed calls answered by a backend.",
		func() float64 { return float64(rt.proxied.Load()) })
	r.CounterFunc(MetricProxyFailovers, "Proxied calls that failed over to the next rendezvous rank.",
		func() float64 { return float64(rt.proxyFailovers.Load()) })
	for _, b := range rt.backends {
		b := b
		r.CounterFunc(MetricBackendRequests, "Requests sent to the backend.",
			func() float64 { return float64(b.requests.Load()) }, "backend", b.cfg.Addr)
		r.CounterFunc(MetricBackendFailures, "Backend-indicting failures (transport loss, 503).",
			func() float64 { return float64(b.failures.Load()) }, "backend", b.cfg.Addr)
		r.GaugeFunc(MetricBackendPending, "Router-side in-flight requests on the backend.",
			func() float64 { return float64(b.pending.Load()) }, "backend", b.cfg.Addr)
		r.GaugeFunc(MetricBreakerState, "Circuit state: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch b.br.State() {
				case BreakerHalfOpen:
					return 1
				case BreakerOpen:
					return 2
				}
				return 0
			}, "backend", b.cfg.Addr)
		r.GaugeFunc(MetricBackendDraining, "1 while the backend is drained out of routing.",
			func() float64 {
				if b.draining.Load() {
					return 1
				}
				return 0
			}, "backend", b.cfg.Addr)
		r.GaugeFunc(MetricBackendP99, "Scrape-derived windowed p99 latency in seconds.",
			func() float64 { return float64(b.p99Micros.Load()) / 1e6 }, "backend", b.cfg.Addr)
		r.GaugeFunc(MetricBackendShedRate, "Scrape-derived windowed shed rate.",
			func() float64 { return float64(b.shedPPM.Load()) / 1e6 }, "backend", b.cfg.Addr)
	}
}
