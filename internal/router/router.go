// Package router is the fleet tier: a shared-nothing proxy that fronts N
// cmd/serve backends over persistent RPS2 connections and re-exposes the
// same HTTP and RPS2 front ends, so one process's capacity stops being
// the deployment's ceiling. Each backend keeps its own registry,
// admission controller and batch schedulers; the router holds no model
// state at all. What it adds is placement and fault tolerance:
//
//   - Routing: requests keyed by "name" or "name@version" go to the
//     least-loaded healthy backend whose propagated registry view
//     (periodic /v1/models scrape) holds the route. The route string is
//     forwarded verbatim, so alias resolution and A/B weight splits keep
//     happening in the backend's registry — the router adds a tier
//     without changing serving semantics.
//   - Health: a per-backend checker (synthetic probe infer plus
//     scrape-derived p99/shed-rate from /metrics) feeds a three-state
//     circuit breaker with jittered exponential reopen backoff.
//   - Retries: an idempotent infer that fails with a transport-shaped
//     error (connection lost, 503, backend draining) is retried once on
//     a *different* healthy backend, under a token-bucket retry budget
//     (~10% of traffic) so retry storms cannot amplify an outage. Typed
//     *admission.OverloadError sheds pass through untouched — the
//     backend said "no", and saying it louder elsewhere helps nobody.
//   - Drain: marking a backend draining (admin endpoint) excludes it
//     from routing while its in-flight work completes via the stream
//     layer's GOAWAY handshake; nothing accepted is lost.
package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/serve/stream"
)

// ErrNoBackend is returned when no healthy, non-draining backend holds
// the requested route. It wraps serve.ErrClosed so the HTTP layer maps
// it to 503 and the RPS2 status codec keeps its typed identity on the
// wire.
var ErrNoBackend = fmt.Errorf("router: no healthy backend for route (%w)", serve.ErrClosed)

// ErrUnknownRoute is returned when no backend's view holds the route at
// all — not an availability problem but an addressing one, so it wraps
// serve.ErrNotFound and surfaces as 404, exactly as a single process
// answers a model it does not serve.
var ErrUnknownRoute = fmt.Errorf("router: no backend holds route (%w)", serve.ErrNotFound)

// Options parameterises a Router.
type Options struct {
	// Backends lists the fronted processes. At least one is required.
	Backends []BackendConfig
	// Conns is the number of persistent RPS2 connections per backend
	// (default 1; raise it to overlap more pipelining windows).
	Conns int
	// RefreshInterval is the view/health scrape cadence (default 500ms).
	RefreshInterval time.Duration
	// ProbeInterval is the synthetic probe infer cadence (default
	// 250ms). Probes are also how an open circuit discovers recovery,
	// so this bounds re-close latency together with the breaker backoff.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe infer (default 250ms).
	ProbeTimeout time.Duration
	// Breaker parameterises every backend's circuit breaker.
	Breaker BreakerConfig
	// RetryBudget is the token-bucket accrual per routed request
	// (default 0.1 — retries bounded to ~10% of traffic; burst up to
	// 10 tokens). Zero keeps the default; negative disables retries.
	RetryBudget float64
	// MaxP99 trips a backend's breaker when its scrape-derived windowed
	// p99 exceeds it (0 disables the check).
	MaxP99 time.Duration
	// MaxShedRate trips the breaker when the backend's windowed
	// shed-rate (sheds / requests) exceeds it (0 disables).
	MaxShedRate float64
	// MinWindow is the minimum windowed request count before p99 and
	// shed-rate verdicts apply (default 16) — thin windows are noise.
	MinWindow int
	// Affinity switches inference routing from least-loaded to rendezvous
	// (highest-random-weight) hashing keyed on the route: one model
	// version's traffic sticks to one backend while it stays healthy, so
	// that backend's exact-input LRU and similarity caches stay warm
	// instead of being diluted across the fleet. The HTTP-proxied
	// endpoints (vector tier, /embed) always use rendezvous placement
	// regardless of this setting — a vector collection must live
	// somewhere definite.
	Affinity bool
	// ProxyTimeout bounds one HTTP-proxied call (vector/embed endpoints;
	// default 30s).
	ProxyTimeout time.Duration
	// Metrics registers the router's series when set.
	Metrics *metrics.Registry
	// Seed roots the breaker/backoff jitter (0 seeds from the clock).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.RefreshInterval <= 0 {
		o.RefreshInterval = 500 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 250 * time.Millisecond
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 0.1
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 16
	}
	if o.ProxyTimeout <= 0 {
		o.ProxyTimeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// Router fronts a fleet of backends. It implements stream.Backend, so
// the same RPS2 Server that exposes a single registry exposes a whole
// fleet when handed a Router instead.
type Router struct {
	opts     Options
	backends []*backend

	// routes interns "name@version" concatenations so the routed hot
	// path stays allocation-free for pinned requests too.
	routesMu sync.RWMutex
	routes   map[routeKey]string

	budget tokenBucket

	// proxyClient carries the HTTP-proxied endpoints (vector tier,
	// /embed) to backend HTTP surfaces, rendezvous-placed by key.
	proxyClient *http.Client

	retries        atomic.Uint64
	noBackend      atomic.Uint64
	routed         atomic.Uint64
	proxied        atomic.Uint64
	proxyFailovers atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

type routeKey struct{ name, version string }

// New dials every backend (reconnecting clients, so a backend that is
// down at start is dialed lazily — but the initial dial failing is
// surfaced to keep configuration errors loud) and starts the health
// loops.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	rt := &Router{
		opts:        opts,
		routes:      make(map[routeKey]string),
		stop:        make(chan struct{}),
		proxyClient: &http.Client{Timeout: opts.ProxyTimeout},
	}
	rt.budget.init(opts.RetryBudget, 10)
	for i, cfg := range opts.Backends {
		b := &backend{
			cfg: cfg,
			br:  newBreaker(opts.Breaker, opts.Seed+int64(i)),
		}
		for c := 0; c < opts.Conns; c++ {
			cl, err := stream.DialOptions(cfg.Addr, stream.ClientOptions{
				Dial:      cfg.Dial,
				Reconnect: true,
			})
			if err != nil {
				rt.closeClients()
				return nil, fmt.Errorf("router: dial backend %s: %w", cfg.Addr, err)
			}
			b.clients = append(b.clients, cl)
		}
		rt.backends = append(rt.backends, b)
	}
	if opts.Metrics != nil {
		rt.registerMetrics(opts.Metrics)
	}
	// One synchronous refresh round so the router does not route blind
	// for the first interval — before the health loops start, so the
	// non-atomic scrape state (prevLatency etc., owned by the health
	// loop) is never touched by two goroutines at once.
	for _, b := range rt.backends {
		rt.refresh(b)
	}
	rt.wg.Add(len(rt.backends))
	for _, b := range rt.backends {
		go rt.healthLoop(b)
	}
	return rt, nil
}

func (rt *Router) closeClients() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, b := range rt.backends {
		b.close(ctx)
	}
}

// Close stops the health loops and drains every backend connection.
func (rt *Router) Close(ctx context.Context) error {
	if rt.closed.Swap(true) {
		return nil
	}
	close(rt.stop)
	rt.wg.Wait()
	for _, b := range rt.backends {
		b.close(ctx)
	}
	return ctx.Err()
}

// route interns the wire route string for (name, version).
//
//repro:noalloc
func (rt *Router) route(name, version string) string {
	if version == "" {
		return name
	}
	k := routeKey{name, version}
	rt.routesMu.RLock()
	r, ok := rt.routes[k]
	rt.routesMu.RUnlock()
	if ok {
		return r
	}
	//repro:lint-ignore noalloc interning allocates once per distinct route, not per request
	return rt.internRoute(k)
}

func (rt *Router) internRoute(k routeKey) string {
	rt.routesMu.Lock()
	defer rt.routesMu.Unlock()
	if r, ok := rt.routes[k]; ok {
		return r
	}
	r := k.name + "@" + k.version
	rt.routes[k] = r
	return r
}

// pick selects the routable backend for route, skipping exclude (the
// backend a retry already failed on): rendezvous-ranked under
// Options.Affinity, least-loaded otherwise. Closed-breaker backends win;
// if none qualifies, a half-open-eligible backend may claim its probe
// slot and take the request.
//
//repro:noalloc
func (rt *Router) pick(route string, exclude *backend) *backend {
	if rt.opts.Affinity {
		return rt.pickAffine(route, exclude)
	}
	var best *backend
	var bestLoad int64
	for _, b := range rt.backends {
		if b == exclude || b.draining.Load() || !b.holds(route) || b.down() {
			continue
		}
		if !b.br.Closed() {
			continue
		}
		load := b.pending.Load()
		if best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	if best != nil {
		return best
	}
	// No closed breaker: let one backend probe its way back.
	now := time.Now()
	for _, b := range rt.backends {
		if b == exclude || b.draining.Load() || !b.holds(route) || b.down() {
			continue
		}
		if b.br.TryProbe(now) {
			return b
		}
	}
	return nil
}

// InferInto routes one request — this is stream.Backend, the seam that
// lets cmd/router's RPS2 listener and HTTP mux reuse the stream server
// and handler shapes unchanged. The route string is forwarded verbatim;
// the chosen backend's registry resolves aliases and A/B splits.
//
//repro:noalloc
func (rt *Router) InferInto(ctx context.Context, name, version string, input, scores []float64) (serve.Result, error) {
	route := rt.route(name, version)
	rt.routed.Add(1)
	rt.budget.accrue()
	b := rt.pick(route, nil)
	if b == nil {
		rt.noBackend.Add(1)
		if !rt.holdsAnywhere(route) {
			return serve.Result{}, ErrUnknownRoute
		}
		return serve.Result{}, ErrNoBackend
	}
	res, err := b.do(ctx, route, input, scores)
	if err == nil {
		return res, nil
	}
	// A typed overload is a backend's deliberate "no" — pass it through
	// untouched, never retry it.
	if isOverload(err) || !retryable(err) {
		return res, err
	}
	if !rt.budget.take() {
		return res, err
	}
	b2 := rt.pick(route, b)
	if b2 == nil {
		rt.noBackend.Add(1)
		return res, err
	}
	rt.retries.Add(1)
	return b2.do(ctx, route, input, scores)
}

// holdsAnywhere reports whether any backend's view — healthy or not —
// holds the route, separating "unknown model" (404) from "known but
// unavailable" (503).
//
//repro:noalloc
func (rt *Router) holdsAnywhere(route string) bool {
	for _, b := range rt.backends {
		if b.holds(route) {
			return true
		}
	}
	return false
}

// Infer is the single-result convenience form of InferInto.
func (rt *Router) Infer(ctx context.Context, name, version string, input []float64) (serve.Result, error) {
	return rt.InferInto(ctx, name, version, input, nil)
}

// isOverload reports a typed admission shed.
//
//repro:noalloc
func isOverload(err error) bool {
	var oe *admission.OverloadError
	//repro:lint-ignore noalloc errors.As with a concrete pointer target walks the chain without allocating
	return errors.As(err, &oe)
}

// isBackendFailure classifies errors that indict the backend (feed its
// breaker): transport loss and 503-shaped unavailability. Not-found,
// bad-request and caller-deadline errors are the request's fault, and
// overload sheds are the backend working as designed.
//
//repro:noalloc
func isBackendFailure(err error) bool {
	if errors.Is(err, stream.ErrConnLost) || errors.Is(err, stream.ErrGoingAway) {
		return true
	}
	if isOverload(err) {
		return false
	}
	return errors.Is(err, serve.ErrClosed)
}

// retryable reports whether the request may try a different backend: the
// failure must be transport-shaped — connection loss, 503/closed,
// GOAWAY — so the request provably never reached model execution, or
// reached a backend that refused it wholesale. Infer is idempotent, so
// the single retry is safe; the budget makes it bounded.
//
//repro:noalloc
func retryable(err error) bool {
	return isBackendFailure(err)
}

// Backends snapshots every backend's status row.
func (rt *Router) Backends() []BackendStatus {
	out := make([]BackendStatus, len(rt.backends))
	for i, b := range rt.backends {
		out[i] = b.status()
	}
	return out
}

// SetDraining marks the backend serving addr as draining (true: routing
// stops sending it new work) or restores it. It reports whether a
// backend with that addr exists.
func (rt *Router) SetDraining(addr string, draining bool) bool {
	for _, b := range rt.backends {
		if b.cfg.Addr == addr {
			b.draining.Store(draining)
			return true
		}
	}
	return false
}

// Models merges every backend's propagated view into one deduplicated
// model list (by name@version), preferring the row from the backend
// whose view is freshest. This is the router's /v1/models answer.
func (rt *Router) Models() []serve.ModelInfo {
	seen := make(map[string]serve.ModelInfo)
	fresh := make(map[string]int64) // id -> lastRefresh of the winning row
	order := make([]string, 0, 8)
	for _, b := range rt.backends {
		v := b.view.Load()
		if v == nil {
			continue
		}
		ts := b.lastRefresh.Load()
		for _, m := range v.models {
			id := m.Name + "@" + m.Version
			if prev, dup := fresh[id]; dup {
				if ts <= prev {
					continue
				}
			} else {
				order = append(order, id)
			}
			seen[id] = m
			fresh[id] = ts
		}
	}
	out := make([]serve.ModelInfo, 0, len(order))
	for _, id := range order {
		out = append(out, seen[id])
	}
	return out
}

// Stats is the router's own counter snapshot.
type Stats struct {
	Routed    uint64 `json:"routed"`
	Retries   uint64 `json:"retries"`
	NoBackend uint64 `json:"no_backend"`
	// Proxied counts HTTP-proxied calls (vector tier, /embed) that
	// reached a backend; ProxyFailovers counts transport failures that
	// fell to the next rendezvous rank.
	Proxied        uint64 `json:"proxied"`
	ProxyFailovers uint64 `json:"proxy_failovers"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	return Stats{
		Routed:         rt.routed.Load(),
		Retries:        rt.retries.Load(),
		NoBackend:      rt.noBackend.Load(),
		Proxied:        rt.proxied.Load(),
		ProxyFailovers: rt.proxyFailovers.Load(),
	}
}

// tokenBucket is the retry budget: every routed request accrues a
// fraction of a token, a retry spends a whole one, so retries are
// bounded to roughly the accrual rate times traffic — an outage cannot
// double the fleet's load. Scaled-integer atomics keep it lock- and
// allocation-free on the hot path.
type tokenBucket struct {
	level   atomic.Int64 // micro-tokens
	accrual int64        // micro-tokens per request
	max     int64        // cap in micro-tokens
}

func (tb *tokenBucket) init(perRequest float64, burst int64) {
	if perRequest <= 0 {
		return // disabled: zero accrual, empty bucket — take() always fails
	}
	tb.accrual = int64(perRequest * 1e6)
	tb.max = burst * 1e6
	tb.level.Store(tb.max) // start full: early failures may retry
}

//repro:noalloc
func (tb *tokenBucket) accrue() {
	if tb.accrual == 0 {
		return
	}
	for {
		cur := tb.level.Load()
		next := cur + tb.accrual
		if next > tb.max {
			next = tb.max
		}
		if next == cur || tb.level.CompareAndSwap(cur, next) {
			return
		}
	}
}

//repro:noalloc
func (tb *tokenBucket) take() bool {
	for {
		cur := tb.level.Load()
		if cur < 1e6 {
			return false
		}
		if tb.level.CompareAndSwap(cur, cur-1e6) {
			return true
		}
	}
}
