package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// scrapeClient is the HTTP client for view refreshes and metrics
// scrapes; its timeout bounds one health-loop iteration.
var scrapeClient = &http.Client{Timeout: 2 * time.Second}

// healthLoop is one backend's keeper: it refreshes the propagated
// registry view and scrape-derived health signals every RefreshInterval
// and sends a synthetic probe infer every ProbeInterval. Probe and
// scrape verdicts feed the breaker — including reopen probes for an open
// circuit, so a killed backend's circuit re-closes by itself after
// revival.
func (rt *Router) healthLoop(b *backend) {
	defer rt.wg.Done()
	refresh := time.NewTicker(rt.opts.RefreshInterval)
	probe := time.NewTicker(rt.opts.ProbeInterval)
	defer refresh.Stop()
	defer probe.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-refresh.C:
			rt.refresh(b)
		case <-probe.C:
			rt.probe(b)
		}
	}
}

// refresh pulls /v1/models and /metrics from the backend's HTTP surface.
// The models answer becomes the routing view; the metrics scrape yields
// the windowed p99 and shed-rate that can trip the breaker even while
// the data path still answers.
func (rt *Router) refresh(b *backend) {
	if b.cfg.HTTPURL == "" {
		return
	}
	if v, err := fetchView(b.cfg.HTTPURL); err == nil {
		b.view.Store(v)
		b.lastRefresh.Store(time.Now().UnixNano())
	}
	rt.scrapeHealth(b)
}

// modelsAnswer is the backend's /v1/models JSON shape.
type modelsAnswer struct {
	Models []serve.ModelInfo `json:"models"`
}

func fetchView(baseURL string) (*view, error) {
	resp, err := scrapeClient.Get(baseURL + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: /v1/models status %d", resp.StatusCode)
	}
	var ans modelsAnswer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		return nil, err
	}
	v := &view{
		routes: make(map[string]serve.ModelInfo, 2*len(ans.Models)),
		models: ans.Models,
	}
	for _, m := range ans.Models {
		// The bare name is routable whenever the backend holds any
		// version of it: the backend's own registry resolves the alias
		// and applies its A/B split, so weight semantics survive the
		// router tier untouched.
		v.routes[m.Name] = m
		v.routes[m.Name+"@"+m.Version] = m
	}
	return v, nil
}

// scrapeHealth diffs consecutive /metrics scrapes into windowed p99 and
// shed-rate, trips the breaker past the thresholds, and stores the
// signals for /v1/backends and the gauges.
func (rt *Router) scrapeHealth(b *backend) {
	sc, err := fetchScrape(b.cfg.HTTPURL)
	if err != nil {
		return // transport health is the probe's job; scrape gaps are not failures
	}
	lat, ok := sc.HistogramSum(serve.MetricRequestLatency)
	if !ok {
		return
	}
	requests := sc.Sum(serve.MetricRequests)
	shed := sc.Sum(serve.MetricShed)
	if !b.scrapeReady {
		b.prevLatency, b.prevRequests, b.prevShed = lat, requests, shed
		b.scrapeReady = true
		return
	}
	window := lat.Sub(b.prevLatency)
	dReq := requests - b.prevRequests
	dShed := shed - b.prevShed
	b.prevLatency, b.prevRequests, b.prevShed = lat, requests, shed

	if window.Count() > 0 {
		b.p99Micros.Store(int64(window.Quantile(0.99) * 1e6))
	}
	if dReq > 0 {
		b.shedPPM.Store(int64(dShed / dReq * 1e6))
	}
	if int(window.Count()) < rt.opts.MinWindow {
		return // thin window: no verdict either way
	}
	if rt.opts.MaxP99 > 0 && window.Quantile(0.99) > rt.opts.MaxP99.Seconds() {
		b.br.Trip(time.Now())
		return
	}
	if rt.opts.MaxShedRate > 0 && dReq > 0 && dShed/dReq > rt.opts.MaxShedRate {
		b.br.Trip(time.Now())
	}
}

func fetchScrape(baseURL string) (*metrics.Scrape, error) {
	resp, err := scrapeClient.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: /metrics status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// probe sends one synthetic infer down the data path. For a closed
// breaker it contributes to the consecutive-failure count; for an open
// one past its backoff it claims the half-open probe slot, so recovery
// is discovered without waiting for live traffic to gamble on the
// backend.
func (rt *Router) probe(b *backend) {
	route, dim, ok := b.probeTarget()
	if !ok {
		return // no view yet: nothing safe to infer against
	}
	state := b.br.State()
	if state != BreakerClosed && !b.br.TryProbe(time.Now()) {
		return // open and not yet due, or another probe owns the slot
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	input := make([]float64, dim)
	_, err := b.do(ctx, route, input, nil)
	// b.do reports every verdict to the breaker, including releasing a
	// half-open probe slot when the failure does not indict the backend
	// (e.g. our own probe timeout) — the slot never leaks.
	if err != nil {
		msg := err.Error()
		b.probeErr.Store(&msg)
	} else {
		b.probeErr.Store(nil)
	}
}
