package router

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"time"
)

// Rendezvous (highest-random-weight) hashing gives the router cache
// affinity: every key — an inference route, or a vector collection — maps
// to a stable ranking of backends, and the router sends the key to the
// highest-ranked eligible one. Requests for one model version land on the
// process whose exact-input LRU and similarity cache are already warm, and
// a vector collection's upserts and searches land on the one process that
// holds it. When the chosen backend drops out (breaker open, draining,
// transport down) the key falls to its next-ranked backend — only the keys
// owned by the failed backend move, the rest of the fleet keeps its warm
// caches, which is precisely the property least-loaded routing lacks.

// rendezvousScore ranks one (key, backend) pair: FNV-1a over the key, an
// NUL separator and the backend address. Deterministic across processes,
// so a fleet of routers agrees on placement without coordination.
//
//repro:noalloc
func rendezvousScore(key, addr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= 0
	h *= 1099511628211
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// pickAffine is pick with rendezvous ranking instead of least-loaded: the
// highest-scoring eligible backend wins, so a route sticks to one backend
// while it stays healthy. The half-open probe fallback is unchanged.
//
//repro:noalloc
func (rt *Router) pickAffine(route string, exclude *backend) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range rt.backends {
		if b == exclude || b.draining.Load() || !b.holds(route) || b.down() {
			continue
		}
		if !b.br.Closed() {
			continue
		}
		score := rendezvousScore(route, b.cfg.Addr)
		if best == nil || score > bestScore {
			best, bestScore = b, score
		}
	}
	if best != nil {
		return best
	}
	now := time.Now()
	for _, b := range rt.backends {
		if b == exclude || b.draining.Load() || !b.holds(route) || b.down() {
			continue
		}
		if b.br.TryProbe(now) {
			return b
		}
	}
	return nil
}

// proxyOrder returns every scrape-enabled, routable backend in descending
// rendezvous rank for key — the forwarding order for the HTTP-proxied
// endpoints (vector tier, /embed). Affinity is unconditional here: a
// vector collection lives on whichever backend its upserts landed on, so
// placement must be deterministic whether or not -affinity rankings were
// chosen for inference.
func (rt *Router) proxyOrder(key string) []*backend {
	var out []*backend
	for _, b := range rt.backends {
		if b.cfg.HTTPURL == "" || b.draining.Load() || b.down() || !b.br.Closed() {
			continue
		}
		out = append(out, b)
	}
	// Insertion sort by descending score; fleets are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rendezvousScore(key, out[j].cfg.Addr) > rendezvousScore(key, out[j-1].cfg.Addr); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// proxyHTTP forwards the request body to the same path on the
// highest-ranked backend for key, falling to the next rank on transport
// failure (a backend that *answered* — any status — ends the walk: its
// verdict is the verdict). Returns false if no backend answered.
func (rt *Router) proxyHTTP(w http.ResponseWriter, r *http.Request, key string) bool {
	order := rt.proxyOrder(key)
	if len(order) == 0 {
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(err))
		return true
	}
	for _, b := range order {
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			strings.TrimRight(b.cfg.HTTPURL, "/")+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			continue
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := rt.proxyClient.Do(req)
		if err != nil {
			rt.proxyFailovers.Add(1)
			continue
		}
		rt.proxied.Add(1)
		copyResponse(w, resp)
		return true
	}
	return false
}

// copyResponse relays a backend's answer: status, Content-Type and any
// Retry-After hint, then the body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The client went away mid-relay; nothing to answer.
		return
	}
}
