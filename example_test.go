package repro_test

import (
	"fmt"

	"repro"
)

// Example reproduces the heart of the paper in a few lines: a
// block-circulant weight matrix multiplied through the FFT procedure, with
// its compression ratio and the modelled latency of the deployed Arch-1
// pipeline on the paper's best device.
func Example() {
	w, err := repro.NewBlockCirculant(512, 256, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("W stores %d of %d parameters (%.0fx compression)\n",
		w.NumParams(), w.Rows()*w.Cols(), w.CompressionRatio())

	y := w.TransMulVec(make([]float64, 512)) // Wᵀx via FFT → ∘ → IFFT
	fmt.Printf("Wᵀx has %d outputs\n", len(y))

	honor := repro.Platforms()[2]
	fmt.Printf("best device: %s (%s)\n", honor.Name, honor.PrimaryCPU)
	// Output:
	// W stores 2048 of 131072 parameters (64x compression)
	// Wᵀx has 256 outputs
	// best device: Huawei Honor 6X (4 x 2.1GHz Cortex-A53)
}
