// Command train is the offline (data-centre) half of the paper's flow: it
// trains one of the evaluation architectures on the synthetic datasets and
// writes the deployment bundle the on-device engine consumes —
//
//	<out>/arch.txt      architecture description (Fig. 4, module 1)
//	<out>/params.bin    trained weights and biases (module 2)
//	<out>/test-images.idx, <out>/test-labels.idx  held-out data (module 3)
//
// Usage:
//
//	train -arch 1|2|3 [-out dir] [-quick]
//
// Arch 3 trains the scaled CIFAR variant (see DESIGN.md §1) whose
// architecture file is emitted to match.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	arch := flag.Int("arch", 1, "architecture to train (1, 2 or 3)")
	out := flag.String("out", "model", "output directory for the deployment bundle")
	quick := flag.Bool("quick", false, "use the cut-down training configuration")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var (
		res      experiments.Result
		archText string
		testset  *dataset.Dataset
	)
	switch *arch {
	case 1, 2:
		cfg := experiments.DefaultMNISTConfig()
		if *quick {
			cfg = experiments.QuickMNISTConfig()
		}
		res = experiments.TrainMNISTArch(*arch, cfg)
		side := 16
		archText = engine.Arch1Text
		if *arch == 2 {
			side = 11
			archText = engine.Arch2Text
		}
		raw := dataset.SyntheticMNIST(cfg.TestSamples, cfg.Seed+1000)
		testset = dataset.Resize(raw, side, side)
	case 3:
		cfg := experiments.DefaultCIFARConfig()
		if *quick {
			cfg = experiments.QuickCIFARConfig()
		}
		res = experiments.TrainCIFAR(cfg)
		archText = experiments.Arch3ScaledText
		raw := dataset.SyntheticCIFAR(cfg.TestSamples, cfg.Seed+1000)
		testset = dataset.Resize(raw, 16, 16)
	default:
		log.Fatalf("unknown architecture %d (want 1, 2 or 3)", *arch)
	}

	writeFile := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	writeFile("arch.txt", func(f *os.File) error {
		_, err := f.WriteString(archText)
		return err
	})
	writeFile("params.bin", func(f *os.File) error {
		return engine.SaveParameters(f, res.Net)
	})
	writeFile("test-images.idx", func(f *os.File) error {
		return dataset.WriteIDXImages(f, testset)
	})
	writeFile("test-labels.idx", func(f *os.File) error {
		return dataset.WriteIDXLabels(f, testset)
	})

	fmt.Printf("trained Arch-%d: test accuracy %.2f%% (synthetic data)\n", *arch, res.Accuracy*100)
	fmt.Printf("deployment bundle written to %s/ (arch.txt, params.bin, test-images.idx, test-labels.idx)\n", *out)
	fmt.Printf("run: go run ./cmd/infer -bundle %s\n", *out)
}
