// Command fftdemo illustrates the paper's two algorithmic figures on the
// terminal: the Cooley–Tukey butterfly recursion of Fig. 1 (stage-by-stage
// trace of an 8-point FFT) and the "FFT → component-wise multiplication →
// IFFT" circulant product of Fig. 2, followed by the O(n²)-versus-O(n log n)
// crossover sweep that motivates the whole design.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"repro/internal/circulant"
	"repro/internal/fft"
)

func main() {
	sweep := flag.Bool("sweep", true, "run the direct-vs-FFT crossover sweep")
	flag.Parse()

	fmt.Println("== Fig. 1: Cooley–Tukey 8-point FFT, stage by stage ==")
	x := []complex128{1, 2, 3, 4, 4, 3, 2, 1}
	fmt.Printf("input:            %v\n", fmtVec(x))
	// Trace: sizes 2, 4, 8 (the three butterfly columns of Fig. 1).
	for _, size := range []int{2, 4, 8} {
		stage := partialFFT(x, size)
		fmt.Printf("after size-%d BFs: %v\n", size, fmtVec(stage))
	}
	dft := make([]complex128, len(x))
	fft.DFTInto(dft, x)
	fmt.Printf("naive DFT:        %v\n\n", fmtVec(dft))

	fmt.Println("== Fig. 2: Wᵀx by FFT → ∘ → IFFT ==")
	w := []float64{0.5, -0.25, 0.125, 0.0625}
	v := []float64{1, 2, 3, 4}
	c := circulant.NewCirculant(w)
	fmt.Printf("w          = %v\n", w)
	fmt.Printf("FFT(w)     = %v   (pre-computed, stored instead of W)\n", fmtVec(c.Spectrum()))
	fmt.Printf("x          = %v\n", v)
	fmt.Printf("FFT(x)     = %v\n", fmtVec(fft.FFTReal(v)))
	fmt.Printf("IFFT(∘)    = %v\n", c.MulVec(v))
	fmt.Printf("direct C·x = %v\n\n", c.MulVecDirect(v))

	if *sweep {
		fmt.Println("== O(n²) direct vs O(n log n) FFT circulant product ==")
		fmt.Printf("%8s %14s %14s %10s\n", "n", "direct ns/op", "fft ns/op", "speedup")
		rng := rand.New(rand.NewSource(1))
		for _, n := range []int{16, 64, 256, 1024, 4096} {
			wv := make([]float64, n)
			xv := make([]float64, n)
			for i := range wv {
				wv[i], xv[i] = rng.NormFloat64(), rng.NormFloat64()
			}
			cc := circulant.NewCirculant(wv)
			direct := timeOp(func() { cc.MulVecDirect(xv) })
			fast := timeOp(func() { cc.MulVec(xv) })
			fmt.Printf("%8d %14d %14d %9.1fx\n", n, direct, fast, float64(direct)/float64(fast))
		}
	}
}

// partialFFT runs the iterative butterflies only up to the given stage size,
// exposing the intermediate columns of Fig. 1 (bit-reversal reorder, then
// size-2, size-4, size-8 butterfly stages, mirroring fft.Plan).
func partialFFT(x []complex128, maxSize int) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[reverse(i, 3)] = x[i]
	}
	for size := 2; size <= maxSize; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := -2 * math.Pi * float64(k) / float64(size)
				a := out[start+k]
				b := out[start+k+half] * cmplx.Exp(complex(0, ang))
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	return out
}

func reverse(v, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

func timeOp(f func()) int64 {
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start).Nanoseconds() / reps
}

func fmtVec(v []complex128) string {
	s := "["
	for i, c := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f%+.2fi", real(c), imag(c))
	}
	return s + "]"
}
