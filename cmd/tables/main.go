// Command tables regenerates the paper's evaluation artefacts: Table I
// (platform specs), Table II (MNIST per-image runtimes + accuracy), Table
// III (CIFAR-10 per-image runtimes + accuracy), the Fig. 5 accuracy-versus-
// latency series, and the storage/compression summary behind the paper's
// O(n²)→O(n) claim.
//
// Usage:
//
//	tables [-quick] [-table 1|2|3] [-fig 5] [-storage] [-energy] [-breakdown] [-all]
//
// -quick uses the cut-down training configurations (seconds instead of a
// minute); recorded EXPERIMENTS.md numbers use the defaults.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/ops"
	"repro/internal/platform"
	"repro/internal/tensor"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1, 2 or 3)")
	fig := flag.Int("fig", 0, "regenerate one figure (5)")
	storage := flag.Bool("storage", false, "print the storage/compression summary")
	energy := flag.Bool("energy", false, "print the per-device energy and model-download summary")
	breakdown := flag.Bool("breakdown", false, "print the Arch-3 per-layer latency attribution (XU3, C++)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use cut-down training configurations")
	fullCIFAR := flag.Bool("fullcifar", false, "train the full 32x32 Arch-3 for the Table III accuracy (minutes)")
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 && !*storage && !*energy && !*breakdown {
		*all = true
	}

	mnistCfg := experiments.DefaultMNISTConfig()
	cifarCfg := experiments.DefaultCIFARConfig()
	if *quick {
		mnistCfg = experiments.QuickMNISTConfig()
		cifarCfg = experiments.QuickCIFARConfig()
	}

	var r1, r2, r3 experiments.Result
	need12 := *all || *table == 2 || *fig == 5 || *energy
	need3 := *all || *table == 3 || *fig == 5
	if need12 {
		fmt.Fprintln(os.Stderr, "training Arch-1 and Arch-2 on synthetic MNIST...")
		r1 = experiments.TrainMNISTArch(1, mnistCfg)
		r2 = experiments.TrainMNISTArch(2, mnistCfg)
	}
	if need3 {
		if *fullCIFAR {
			fmt.Fprintln(os.Stderr, "training the full Arch-3 on synthetic CIFAR-10 (this takes minutes)...")
			r3 = experiments.TrainCIFARFull(experiments.FullCIFARConfig())
		} else {
			fmt.Fprintln(os.Stderr, "training Arch-3 (scaled) on synthetic CIFAR-10...")
			r3 = experiments.TrainCIFAR(cifarCfg)
		}
	}

	if *all || *table == 1 {
		fmt.Println("TABLE I. PLATFORMS UNDER TEST AND THEIR SPECIFICATIONS.")
		fmt.Print(platform.TableI())
		fmt.Println()
	}
	if *all || *table == 2 {
		fmt.Println("TABLE II. CORE RUNTIME OF EACH ROUND OF INFERENCE FOR RESIZED MNIST IMAGES.")
		printLatencyTable(experiments.TableII(r1, r2))
		fmt.Printf("\npaper accuracies: Arch-1 %.2f%%, Arch-2 %.2f%% (true MNIST); measured here on synthetic digits.\n\n",
			experiments.PaperAccuracy["arch1"], experiments.PaperAccuracy["arch2"])
	}
	if *all || *table == 3 {
		fmt.Println("TABLE III. CORE RUNTIME OF EACH ROUND OF INFERENCE FOR CIFAR-10 IMAGES.")
		printLatencyTable(experiments.TableIII(r3))
		trainer := "the scaled trainer"
		if *fullCIFAR {
			trainer = "the full 32x32 Arch-3"
		}
		fmt.Printf("\npaper accuracy: Arch-3 %.1f%% (true CIFAR-10); measured here on the synthetic stand-in with %s.\n\n",
			experiments.PaperAccuracy["arch3"], trainer)
	}
	if *all || *fig == 5 {
		fmt.Println("FIG. 5. PERFORMANCE VS. ACCURACY (series data)")
		fmt.Printf("%-14s %-10s %12s %10s\n", "System", "Dataset", "µs/image", "Accuracy%")
		for _, p := range experiments.Fig5(r1, r3) {
			fmt.Printf("%-14s %-10s %12.1f %10.2f\n", p.System, p.Dataset, p.USPerImg, p.Accuracy)
		}
		fmt.Println()
	}
	if *all || *storage {
		printStorage()
	}
	if *all || *breakdown {
		fmt.Println("\nARCH-3 LATENCY ATTRIBUTION (per layer; where the Table III time goes)")
		rng := rand.New(rand.NewSource(1))
		net := nn.Arch3(rng)
		net.Add(nn.NewSoftmax())
		net.Forward(tensor.New(1, 32, 32, 3), false)
		var stages []platform.LayerCost
		for _, l := range net.Layers {
			var c ops.Counts
			l.CountOps(&c)
			stages = append(stages, platform.LayerCost{Name: l.Name(), Counts: c})
		}
		cfg := platform.Config{Spec: platform.Platforms()[1], Env: platform.EnvCPP}
		fmt.Print(cfg.BreakdownReport(stages))
	}
	if *all || *energy {
		fmt.Println("\nENERGY (modelled, Arch-1 workload; §I embedded-efficiency motivation)")
		fmt.Print(platform.EnergyReport(r1.Counts))
		fmt.Printf("IBM TrueNorth published scale: ~%.1f µJ/image\n", platform.TrueNorthEnergyUJ)

		fmt.Println("\nMODEL DOWNLOAD (§I challenge (i): mobile-link transfer of the model file)")
		dense := platform.ModelBytes(50698, 8) // Arch-1 dense float64
		circ := platform.ModelBytes(2314, 8)   // Arch-1 block-circulant
		fmt.Printf("%-16s %14s %14s\n", "Link", "dense Arch-1", "circulant Arch-1")
		for _, l := range platform.MobileLinks() {
			fmt.Printf("%-16s %13.2fs %13.3fs\n", l.Name,
				l.DownloadSeconds(dense), l.DownloadSeconds(circ))
		}
	}
}

func printLatencyTable(cells []experiments.Cell) {
	fmt.Printf("%-7s %-5s %-16s %14s %14s %8s %10s\n",
		"Arch", "Impl", "Device", "modelled µs", "paper µs", "Δ%", "Accuracy%")
	for _, c := range cells {
		delta := "-"
		if c.PaperUS > 0 {
			delta = fmt.Sprintf("%+.1f", (c.US/c.PaperUS-1)*100)
		}
		paper := "-"
		if c.PaperUS > 0 {
			paper = fmt.Sprintf("%14.1f", c.PaperUS)
		}
		fmt.Printf("%-7s %-5s %-16s %14.1f %14s %8s %10.2f\n",
			c.Arch, c.Env, c.Device, c.US, paper, delta, c.Accuracy)
	}
}

func printStorage() {
	fmt.Println("STORAGE / COMPRESSION (paper §IV: O(n²) → O(n) weight storage)")
	rng := rand.New(rand.NewSource(1))
	rows := []struct {
		name  string
		circ  *nn.Network
		dense *nn.Network
	}{
		{"Arch-1", nn.Arch1(rng), nn.Arch1Dense(rng)},
		{"Arch-2", nn.Arch2(rng), nn.Arch2Dense(rng)},
	}
	fmt.Printf("%-8s %16s %16s %12s\n", "Arch", "circulant params", "dense params", "compression")
	for _, r := range rows {
		c, d := r.circ.NumParams(), r.dense.NumParams()
		fmt.Printf("%-8s %16d %16d %11.1fx\n", r.name, c, d, float64(d)/float64(c))
	}
	a3 := nn.Arch3(rng)
	fmt.Printf("%-8s %16d %16s %12s\n", "Arch-3", a3.NumParams(), "(see DESIGN.md)", "-")
}
