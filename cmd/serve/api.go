package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"mime"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/vector"
)

// registerPprof mounts net/http/pprof's handlers under /debug/pprof/ on
// the serving mux. Deliberate opt-in (the -pprof flag): the profiling
// endpoints expose process internals and add handlers to a
// production-facing surface, but with them a live server can be profiled
// exactly as the perf work on the spectral kernels profiles benchmarks —
// `go tool pprof http://host/debug/pprof/profile` against real traffic.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// newMux builds the HTTP surface over a model registry. Factored out of
// main so the handler wiring is testable (the endpoint regression tests
// drive it through httptest). defaultName is the model the deprecated
// single-model endpoints (/infer, /stats) bind to. ctrl, when non-nil, is
// the admission controller shared with the streaming listener — one
// capacity budget across both protocols; nil admits everything. mx is the
// process metrics registry served at GET /metrics in Prometheus text
// exposition format; the serving layers register their series into it, so
// the scrape and the /stats JSON read the same counters.
// vs is the vector tier's collection store; nil creates a fresh one (the
// endpoints are always mounted — an empty store costs nothing).
func newMux(reg *serve.Registry, defaultName string, start time.Time, ctrl *admission.Controller, mx *metrics.Registry, vs *vector.Store) *http.ServeMux {
	if vs == nil {
		vs = vector.NewStore()
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", mx.Handler())
	registerVectorAPI(mux, vs)
	registerVectorMetrics(mx, vs)
	embedRequests := mx.Counter(metricEmbedRequests, "POST /embed requests accepted by admission control.")
	mux.HandleFunc("POST /v1/models/{id}/embed", func(w http.ResponseWriter, r *http.Request) {
		name, version := model.ParseID(r.PathValue("id"))
		handleEmbed(w, r, reg, name, version, ctrl, embedRequests)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"models":   reg.Len(),
			"uptime_s": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": reg.Models()})
	})
	mux.HandleFunc("POST /v1/models/{id}/infer", func(w http.ResponseWriter, r *http.Request) {
		name, version := model.ParseID(r.PathValue("id"))
		handleInfer(w, r, reg, name, version, ctrl)
	})
	mux.HandleFunc("GET /v1/models/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		name, version := model.ParseID(r.PathValue("id"))
		st, err := reg.Stats(name, version)
		if err != nil {
			writeJSON(w, statusFor(err), errorBody(err))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	// Deprecated single-model aliases, routed to defaultName@latest.
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		handleInfer(w, r, reg, defaultName, "", ctrl)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := reg.Stats(defaultName, "")
		if err != nil {
			writeJSON(w, statusFor(err), errorBody(err))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

// inferRequest is the JSON /infer request body: either a single input
// vector or a list of them.
type inferRequest struct {
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// Abuse bounds for one /infer call: a request fans out one goroutine per
// input, so both the count and the decoded body size must be capped or a
// single client post could exhaust the process. Both caps reuse the wire
// format's limits, so the two codecs admit the same load per post and a
// wire request that passes the decoder's size check is never truncated by
// MaxBytesReader.
const (
	maxInputsPerRequest = serve.MaxWireInputs
	maxBodyBytes        = serve.MaxWireBytes
)

// handleInfer answers single- and multi-input inference posts in JSON or
// wire-format v1 (selected by Content-Type). Multiple inputs are submitted
// concurrently so the batching scheduler can coalesce them into shared
// forward passes. Malformed payloads and wrong input dimensions are
// structured 400 responses; unknown models are 404; a request shed by
// admission control is a 429 with a Retry-After header, before the body
// is even read.
func handleInfer(w http.ResponseWriter, r *http.Request, reg *serve.Registry, name, version string, ctrl *admission.Controller) {
	if ctrl != nil {
		ticket, err := ctrl.Admit(name)
		if err != nil {
			writeError(w, err)
			return
		}
		defer ticket.Release()
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	// Compare the media type proper, ignoring parameters, so a client
	// library that appends ";charset=..." still reaches the wire decoder.
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == serve.WireContentType {
		inputs, err := serve.DecodeWireRequest(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		results, err := inferAll(r.Context(), reg, name, version, inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", serve.WireContentType)
		if err := serve.EncodeWireResults(w, results); err != nil {
			log.Printf("encoding wire response: %v", err)
		}
		return
	}

	var req inferRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) > maxInputsPerRequest {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("%d inputs in one request, limit %d", len(req.Inputs), maxInputsPerRequest),
		})
		return
	}
	if req.Input != nil && len(req.Inputs) > 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body sets both "input" and "inputs"; use one`})
		return
	}
	switch {
	case req.Input != nil:
		res, err := reg.Infer(r.Context(), name, version, req.Input)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case len(req.Inputs) > 0:
		results, err := inferAll(r.Context(), reg, name, version, req.Inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `need "input" or "inputs"`})
	}
}

// inferAll submits every input concurrently and returns the results in
// input order, or the first error.
func inferAll(ctx context.Context, reg *serve.Registry, name, version string, inputs [][]float64) ([]serve.Result, error) {
	results := make([]serve.Result, len(inputs))
	errs := make([]error, len(inputs))
	done := make(chan struct{}, len(inputs))
	for i, in := range inputs {
		go func(i int, in []float64) {
			results[i], errs[i] = reg.Infer(ctx, name, version, in)
			done <- struct{}{}
		}(i, in)
	}
	for range inputs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// statusFor maps serving errors to HTTP statuses. Everything not
// recognised — including serve.InputSizeError — is a client-input 400.
func statusFor(err error) int {
	var oe *admission.OverloadError
	switch {
	case errors.As(err, &oe):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

// writeError writes err as a structured JSON error with its mapped
// status; an overload carries its Retry-After hint as the standard header
// so well-behaved clients back off for the advertised interval.
func writeError(w http.ResponseWriter, err error) {
	var oe *admission.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		secs := int(oe.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1 // Retry-After is whole seconds; never advertise 0
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, statusFor(err), errorBody(err))
}

func errorBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
