package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/metrics"
	"repro/internal/vector"
)

// Metric families the vector tier exposes on the shared /metrics registry.
const (
	metricVectorCollections  = "repro_vector_collections"
	metricVectorVectors      = "repro_vector_vectors"
	metricVectorQueriesTotal = "repro_vector_queries_total"
	metricVectorUpsertsTotal = "repro_vector_upserts_total"
)

// registerVectorMetrics exposes the store's aggregate counters. The store
// already counts queries and upserts per collection with atomics; the
// callback-backed families read those same counters at scrape time, so the
// exposition can never drift from the store's own accounting.
func registerVectorMetrics(mx *metrics.Registry, vs *vector.Store) {
	mx.GaugeFunc(metricVectorCollections, "Vector collections currently held.",
		func() float64 { c, _, _, _ := vs.Totals(); return float64(c) })
	mx.GaugeFunc(metricVectorVectors, "Vectors currently held across all collections.",
		func() float64 { _, v, _, _ := vs.Totals(); return float64(v) })
	mx.CounterFunc(metricVectorQueriesTotal, "Top-k similarity searches served.",
		func() float64 { _, _, q, _ := vs.Totals(); return float64(q) })
	mx.CounterFunc(metricVectorUpsertsTotal, "Vectors inserted or updated.",
		func() float64 { _, _, _, u := vs.Totals(); return float64(u) })
}

// upsertRequest is the JSON body of PUT /v1/vectors/{collection}: parallel
// id and vector lists. The collection is created on first upsert with the
// vectors' dimension; later upserts must match it.
type upsertRequest struct {
	IDs     []string    `json:"ids"`
	Vectors [][]float32 `json:"vectors"`
}

// searchRequest is the JSON body of POST /v1/vectors/{collection}/search.
type searchRequest struct {
	Vector    []float32 `json:"vector"`
	K         int       `json:"k"`
	Metric    string    `json:"metric,omitempty"`    // "cosine" (default) or "dot"
	Quantized bool      `json:"quantized,omitempty"` // score against the int8 mirror
	NProbe    int       `json:"nprobe,omitempty"`    // >0 selects the ANN index
}

// trainRequest is the JSON body of POST /v1/vectors/{collection}/train.
type trainRequest struct {
	K    int   `json:"k"`
	Seed int64 `json:"seed,omitempty"`
}

// collectionInfo is one row of the GET /v1/vectors listing.
type collectionInfo struct {
	Name     string `json:"name"`
	Dim      int    `json:"dim"`
	Count    int    `json:"count"`
	TrainedK int    `json:"trained_k,omitempty"` // ANN centroid count, 0 = untrained
}

// registerVectorAPI mounts the vector tier's endpoints on the serving mux:
//
//	GET  /v1/vectors                       list collections
//	PUT  /v1/vectors/{collection}          upsert vectors (creates on first use)
//	POST /v1/vectors/{collection}/search   top-k similarity search
//	POST /v1/vectors/{collection}/train    build the IVF ANN index
func registerVectorAPI(mux *http.ServeMux, vs *vector.Store) {
	mux.HandleFunc("GET /v1/vectors", func(w http.ResponseWriter, r *http.Request) {
		names := vs.Names()
		infos := make([]collectionInfo, 0, len(names))
		for _, n := range names {
			c, ok := vs.Get(n)
			if !ok {
				continue
			}
			info := collectionInfo{Name: n, Dim: c.Dim(), Count: c.Len()}
			if k, _, trained := c.Trained(); trained {
				info.TrainedK = k
			}
			infos = append(infos, info)
		}
		writeJSON(w, http.StatusOK, map[string]any{"collections": infos})
	})

	mux.HandleFunc("PUT /v1/vectors/{collection}", func(w http.ResponseWriter, r *http.Request) {
		var req upsertRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		if len(req.Vectors) == 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no vectors"})
			return
		}
		c, err := vs.Ensure(r.PathValue("collection"), len(req.Vectors[0]))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		added, updated, err := c.Upsert(req.IDs, req.Vectors)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"added": added, "updated": updated, "count": c.Len()})
	})

	mux.HandleFunc("POST /v1/vectors/{collection}/search", func(w http.ResponseWriter, r *http.Request) {
		c, ok := vs.Get(r.PathValue("collection"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such collection"})
			return
		}
		var req searchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		opt := vector.SearchOptions{Quantized: req.Quantized, NProbe: req.NProbe}
		if req.Metric != "" {
			m, err := vector.ParseMetric(req.Metric)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorBody(err))
				return
			}
			opt.Metric = m
		}
		results, err := c.Search(req.Vector, req.K, opt)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
	})

	mux.HandleFunc("POST /v1/vectors/{collection}/train", func(w http.ResponseWriter, r *http.Request) {
		c, ok := vs.Get(r.PathValue("collection"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such collection"})
			return
		}
		var req trainRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		if err := c.TrainANN(req.K, req.Seed); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		k, n, _ := c.Trained()
		writeJSON(w, http.StatusOK, map[string]any{"trained_k": k, "count": n})
	})
}

// parseSimSpec parses a "-simcache name[@version]" or "-embed
// name[@version]" spec into its id parts, defaulting the version to v1.
func parseSimSpec(flagName, spec string) (name, version string, err error) {
	if spec == "" || strings.ContainsAny(spec, "=:") {
		return "", "", fmt.Errorf("-%s %q: want name[@version]", flagName, spec)
	}
	name, version, _ = strings.Cut(spec, "@")
	if name == "" {
		return "", "", errors.New("-" + flagName + " " + spec + ": empty model name")
	}
	if version == "" {
		version = "v1"
	}
	return name, version, nil
}
