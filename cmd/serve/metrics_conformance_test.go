package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/serve/stream"
	"repro/tools/promcheck"
)

// scrapeMetrics fetches GET /metrics, requires the Prometheus content
// type, and returns the raw exposition body.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValues parses an exposition into series-line → value. Keys are
// the sample as exposed, e.g. `repro_requests_total{model="test@v1"}`.
func seriesValues(t *testing.T, exposition string) map[string]float64 {
	t.Helper()
	vals := make(map[string]float64)
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		vals[line[:i]] = v
	}
	return vals
}

// sumPrefix sums every series whose key starts with prefix — the
// per-shard cache counters aggregate this way.
func sumPrefix(vals map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range vals {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// TestMetricsConformance boots the same wiring main assembles — registry
// with a metrics registry, admission controller, streaming listener —
// drives real traffic through the HTTP mux, then scrapes /metrics and
// validates the exposition with the promcheck parser CI uses. This is
// the metrics-conformance gate: any series the serving layers emit that
// breaks the 0.0.4 text format (bad name, missing HELP/TYPE, inconsistent
// histogram) fails here before a real Prometheus ever scrapes it.
func TestMetricsConformance(t *testing.T) {
	mx := metrics.NewRegistry()
	ctrl := admission.New(admission.Config{MaxInflight: 64})
	ctrl.RegisterMetrics(mx)
	reg := serve.NewRegistry(serve.Options{
		Workers:   2,
		MaxBatch:  4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: 8,
		Metrics:   mx,
	})
	m, err := model.FromNetwork("test", "v1", testNet(1), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	// The embed sibling first, then the scoring model with the similarity
	// cache routed through it — exactly main's -embed/-simcache wiring —
	// so the embed and sim-cache families are in the scrape too.
	em, err := embed.NewModel("test", "v1", testNet(1), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(em); err != nil {
		t.Fatal(err)
	}
	simOpts := serve.Options{
		Workers:   2,
		MaxBatch:  4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: 8,
		Metrics:   mx,
		SimCache: serve.SimCacheOptions{
			Embed:    registryEmbedFn(reg, embed.ModelName("test"), "v1"),
			Capacity: 8,
		},
	}
	if err := reg.RegisterWith(m, simOpts); err != nil {
		t.Fatal(err)
	}
	ss := stream.NewServer(reg, stream.Options{Admission: ctrl, Metrics: mx})
	defer ss.Close()
	hs := httptest.NewServer(newMux(reg, "test", time.Now(), ctrl, mx, nil))
	defer func() { hs.Close(); reg.Close() }()

	// Real traffic so counters and histogram buckets move: distinct
	// inputs (misses + forward passes) plus repeats (cache hits).
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]float64, 6)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	for round := 0; round < 3; round++ {
		for _, in := range inputs {
			postInfer(t, hs.URL+"/infer", in)
		}
	}
	// Embed and vector-tier traffic so their counters move too.
	body, _ := jsonBody(inputs[0])
	resp, err := http.Post(hs.URL+"/v1/models/test@v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/embed status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, hs.URL+"/v1/vectors/conf",
		strings.NewReader(`{"ids":["a","b"],"vectors":[[1,0],[0,1]]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vector upsert status %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/v1/vectors/conf/search", "application/json",
		strings.NewReader(`{"vector":[1,0],"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vector search status %d", resp.StatusCode)
	}

	exposition := scrapeMetrics(t, hs.URL)
	if err := promcheck.Check(strings.NewReader(exposition)); err != nil {
		t.Fatalf("/metrics fails exposition conformance:\n%v", err)
	}

	// Every serving layer must be represented in the scrape.
	for _, family := range []string{
		serve.MetricRequestLatency + "_bucket",
		serve.MetricBatchSize + "_bucket",
		serve.MetricBatchFill,
		serve.MetricQueueDepth,
		serve.MetricRequests,
		serve.MetricCompleted,
		serve.MetricShed,
		serve.MetricCacheHits,
		serve.MetricCacheMisses,
		serve.MetricCacheEntries,
		serve.MetricWorkers,
		"repro_admission_admitted_total",
		"repro_admission_shed_total",
		`repro_admission_shed_total{reason="fairness"}`,
		"repro_admission_inflight",
		"repro_stream_conns",
		"repro_stream_frames_total",
		"repro_stream_pipeline_depth",
		"repro_stream_goaways_total",
		serve.MetricSimCacheHits,
		serve.MetricSimCacheMisses,
		serve.MetricSimCacheFalseHits,
		serve.MetricSimCacheEntries,
		metricEmbedRequests,
		metricVectorCollections,
		metricVectorVectors,
		metricVectorQueriesTotal,
		metricVectorUpsertsTotal,
	} {
		if !strings.Contains(exposition, family) {
			t.Errorf("scrape is missing family %s", family)
		}
	}

	// The latency histogram must have absorbed the completed passes.
	vals := seriesValues(t, exposition)
	count := vals[serve.MetricRequestLatency+`_count{model="test@v1"}`]
	if count <= 0 {
		t.Fatalf("latency histogram count = %g after traffic", count)
	}
}

// TestStatsMetricsParity is the HTTP-level /stats ↔ /metrics parity
// regression: both surfaces aggregate the same per-shard and collector
// counters, so after any traffic mix — including cache hits and SLO
// sheds — the JSON totals and the scraped series must agree exactly.
func TestStatsMetricsParity(t *testing.T) {
	t.Run("cacheHitsAndRequests", func(t *testing.T) {
		mx := metrics.NewRegistry()
		reg := serve.NewRegistry(serve.Options{
			Workers:   2,
			MaxBatch:  4,
			MaxDelay:  100 * time.Microsecond,
			CacheSize: 16,
			Metrics:   mx,
		})
		m, err := model.FromNetwork("test", "v1", testNet(1), []int{64})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(newMux(reg, "test", time.Now(), nil, mx, nil))
		defer func() { hs.Close(); reg.Close() }()

		rng := rand.New(rand.NewSource(3))
		inputs := make([][]float64, 5)
		for i := range inputs {
			inputs[i] = make([]float64, 64)
			for j := range inputs[i] {
				inputs[i][j] = rng.NormFloat64()
			}
		}
		for round := 0; round < 4; round++ {
			for _, in := range inputs {
				postInfer(t, hs.URL+"/infer", in)
			}
		}

		st, err := getStats(hs.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHits == 0 {
			t.Fatal("traffic produced no cache hits; parity check is vacuous")
		}
		vals := seriesValues(t, scrapeMetrics(t, hs.URL))
		assertSeries(t, vals, serve.MetricRequests+`{model="test@v1"}`, float64(st.Requests))
		assertSeries(t, vals, serve.MetricCompleted+`{model="test@v1"}`, float64(st.Completed))
		assertSeries(t, vals, serve.MetricCacheEntries+`{model="test@v1"}`, float64(st.CacheEntries))
		if got := sumPrefix(vals, serve.MetricCacheHits+`{model="test@v1"`); got != float64(st.CacheHits) {
			t.Errorf("sum of cache-hit shards = %g, /stats says %d", got, st.CacheHits)
		}
		if got := sumPrefix(vals, serve.MetricCacheMisses+`{model="test@v1"`); got != float64(st.CacheMisses) {
			t.Errorf("sum of cache-miss shards = %g, /stats says %d", got, st.CacheMisses)
		}
	})

	t.Run("sheds", func(t *testing.T) {
		mx := metrics.NewRegistry()
		// SLO of 1ns: every admitted request is already past its
		// deadline when a worker picks it up, so all of them shed.
		reg := serve.NewRegistry(serve.Options{
			Workers:  1,
			MaxBatch: 4,
			SLO:      time.Nanosecond,
			Metrics:  mx,
		})
		m, err := model.FromNetwork("test", "v1", testNet(1), []int{64})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(newMux(reg, "test", time.Now(), nil, mx, nil))
		defer func() { hs.Close(); reg.Close() }()

		in := make([]float64, 64)
		body, _ := jsonBody(in)
		for i := 0; i < 8; i++ {
			resp, err := http.Post(hs.URL+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}

		st, err := getStats(hs.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		if st.Shed == 0 {
			t.Fatal("SLO=1ns produced no sheds; parity check is vacuous")
		}
		vals := seriesValues(t, scrapeMetrics(t, hs.URL))
		assertSeries(t, vals, serve.MetricShed+`{model="test@v1",reason="slo"}`, float64(st.Shed))
		assertSeries(t, vals, serve.MetricRequests+`{model="test@v1"}`, float64(st.Requests))
	})
}

func assertSeries(t *testing.T, vals map[string]float64, key string, want float64) {
	t.Helper()
	got, ok := vals[key]
	if !ok {
		t.Errorf("scrape has no series %s", key)
		return
	}
	if got != want {
		t.Errorf("%s = %g, /stats says %g", key, got, want)
	}
}

func jsonBody(input []float64) ([]byte, error) {
	var b strings.Builder
	b.WriteString(`{"input":[`)
	for i, v := range input {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteString(`]}`)
	return []byte(b.String()), nil
}
