package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"mime"
	"net/http"

	"repro/internal/embed"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

// metricEmbedRequests counts /embed posts (any outcome past admission).
const metricEmbedRequests = "repro_embed_requests_total"

// handleEmbed answers POST /v1/models/{id}/embed: the id names the *base*
// model, the handler rewrites it to the derived "<name>.embed" identity
// (see internal/embed) and routes through the registry exactly like
// /infer — batching, versions and the "latest" alias all apply. Payloads
// are JSON or the compact embed wire codec (e1), selected by Content-Type;
// responses mirror the request's format, the binary one carrying float32
// (the vector tier's dtype).
func handleEmbed(w http.ResponseWriter, r *http.Request, reg *serve.Registry, name, version string, ctrl *admission.Controller, requests *metrics.Counter) {
	ename := embed.ModelName(name)
	if ctrl != nil {
		ticket, err := ctrl.Admit(ename)
		if err != nil {
			writeError(w, err)
			return
		}
		defer ticket.Release()
	}
	if requests != nil {
		requests.Inc()
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == embed.WireContentType {
		inputs, err := embed.DecodeWireRequest(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		vecs, err := embedAll(r.Context(), reg, ename, version, inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", embed.WireContentType)
		if err := embed.EncodeWireResults(w, vecs); err != nil {
			log.Printf("encoding embed response: %v", err)
		}
		return
	}

	var req inferRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) > maxInputsPerRequest {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("%d inputs in one request, limit %d", len(req.Inputs), maxInputsPerRequest),
		})
		return
	}
	if req.Input != nil && len(req.Inputs) > 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body sets both "input" and "inputs"; use one`})
		return
	}
	switch {
	case req.Input != nil:
		res, err := reg.Infer(r.Context(), ename, version, req.Input)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"embedding": res.Scores, "dim": len(res.Scores)})
	case len(req.Inputs) > 0:
		vecs, err := embedAll(r.Context(), reg, ename, version, req.Inputs)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"embeddings": vecs, "dim": len(vecs[0])})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `need "input" or "inputs"`})
	}
}

// embedAll runs every input through the embedding model concurrently (the
// batching scheduler coalesces them) and returns the vectors in order.
func embedAll(ctx context.Context, reg *serve.Registry, name, version string, inputs [][]float64) ([][]float64, error) {
	results, err := inferAll(ctx, reg, name, version, inputs)
	if err != nil {
		return nil, err
	}
	vecs := make([][]float64, len(results))
	for i := range results {
		vecs[i] = results[i].Scores
	}
	return vecs, nil
}
