// Command serve exposes the multi-model inference registry
// (internal/serve) over HTTP: the production-facing half the paper's
// deployment story implies once the Fig. 4 engine has produced trained
// bundles — one process serving the FC-MNIST and CONV-CIFAR reproductions
// (or a dense-versus-circulant A/B pair) side by side.
//
// Usage:
//
//	serve -model mnist=bundle1 -model cifar=bundle2 [flags]
//	serve -model mnist=bundle1 -model mnist@v2=bundle3 -weights mnist=v1:0.9,v2:0.1 [flags]
//	serve -demo fc=arch1 -demo conv=arch3 [flags]   # random weights, load testing
//	serve -demo mnist=arch1 -quantize mnist=12 \
//	      -weights mnist=v1:0.9,v1-q12:0.1 [flags]  # float vs fixed-point A/B
//	serve -bundle dir [flags]                       # deprecated single-model form
//
// -quantize name[@version]=bits additionally registers an Int16Spectral
// fixed-point build of an already-loaded model under the derived version
// "<version>-q<bits>" (e.g. mnist@v1 → mnist@v1-q12): the paper's
// embedded int16 deployment served side by side with the float build,
// ready for a -weights A/B split.
//
// Flags: [-addr :8080] [-workers N] [-batch 16] [-deadline 2ms] [-cache 1024]
// [-pprof] [-listen-tcp :9090] [-max-inflight N] [-fair-share N] [-quota name=N]
// [-slo 5ms] [-retry-after 50ms] [-canary name@base:name@cand]
// [-canary-interval 15s] [-canary-schedule 0.05,0.25,0.5]
//
// -canary starts the rollout autopilot (internal/canary) over an A/B
// pair: the candidate ramps through the -canary-schedule weight steps,
// each held until its latency quantiles and score drift stay healthy,
// then is promoted to the name's "latest" alias; a sustained breach rolls
// the split back to its pre-canary state. Every transition is logged as
// one JSON line. Typical use with a quantised sibling:
//
//	serve -demo mnist=arch1 -quantize mnist=12 -canary mnist@v1:mnist@v1-q12
//
// With -pprof, net/http/pprof is mounted under /debug/pprof/ so a live
// server can be CPU- and heap-profiled under real traffic.
//
// With -listen-tcp, the same registry is additionally served over the
// RPS2 streaming protocol (wire format v2; see internal/serve/stream):
// persistent TCP connections carrying many pipelined request frames, with
// a GOAWAY drain on SIGTERM that completes every in-flight frame before
// the process exits — a rolling model swap behind a TCP load balancer
// loses no requests.
//
// -max-inflight and -quota enable admission control shared across both
// front ends: past the caps, HTTP posts get 429 + Retry-After and stream
// frames get a 429 status frame, in both cases before any inference work
// is spent. -slo additionally sheds requests that already waited longer
// than the target inside the batching queue — deadline-aware scheduling
// that refuses to burn a forward pass on an answer nobody is waiting for.
//
// Endpoints (wire-format v1; see internal/serve/wire.go for the binary
// request codec selected by Content-Type):
//
//	GET  /metrics                       Prometheus text exposition: per-model
//	                                    latency/batch histograms, queue and
//	                                    cache gauges, admission and stream
//	                                    counters — the same numbers /stats
//	                                    reports, scraped from one registry
//	GET  /healthz                       liveness: {"status":"ok",...}
//	GET  /v1/models                     registered models, versions, stats
//	POST /v1/models/{id}/infer          id = name (routed) or name@version
//	GET  /v1/models/{id}/stats          per-version serving counters
//	POST /infer, GET /stats             deprecated single-model aliases,
//	                                    bound to the first loaded model
//	                                    (deprecated -arch/-params and
//	                                    -bundle load before -model/-demo)
//
// The server batches concurrent /infer requests into single forward passes
// across a per-model pool of replicas; see internal/serve for the
// scheduler's and registry's contracts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"encoding/json"

	"repro/internal/canary"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
	"repro/internal/serve/stream"
	"repro/internal/store"
	"repro/internal/vector"
)

// modelFlag collects repeated "-model name[@version]=value" occurrences.
type modelFlag struct{ specs []string }

func (f *modelFlag) String() string     { return strings.Join(f.specs, ",") }
func (f *modelFlag) Set(s string) error { f.specs = append(f.specs, s); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	var models, demos, weights, quantize modelFlag
	flag.Var(&models, "model", "register a trained bundle: name[@version]=dir (repeatable)")
	flag.Var(&demos, "demo", "register a randomly-initialised built-in architecture: name[@version]=arch1|arch2|arch3, or bare arch1|arch2|arch3 (repeatable)")
	flag.Var(&weights, "weights", "A/B split for a name: name=v1:0.9,v2:0.1 (repeatable)")
	flag.Var(&quantize, "quantize", "also register an int16 fixed-point build of a loaded model: name[@version]=bits (repeatable)")
	bundle := flag.String("bundle", "", "deprecated: single bundle directory (same as -model default=dir)")
	archPath := flag.String("arch", "", "deprecated: architecture file of a single model")
	paramsPath := flag.String("params", "", "deprecated: parameters file of a single model")
	workers := flag.Int("workers", 0, "model replicas per registered model (default: GOMAXPROCS)")
	batch := flag.Int("batch", 16, "max requests coalesced into one forward pass")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "max time to hold an open batch")
	cache := flag.Int("cache", 1024, "LRU result-cache entries per model (0 disables)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for live profiling")
	listenTCP := flag.String("listen-tcp", "", "also serve the RPS2 streaming protocol (wire v2) on this TCP address (empty disables)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max requests in flight process-wide across HTTP and stream (0 disables)")
	fairShare := flag.Int("fair-share", 0, "admission control: max in-flight requests per stream connection (0 disables; sheds with reason \"fairness\")")
	var quotas modelFlag
	flag.Var(&quotas, "quota", "admission control: per-model inflight quota, name=N (repeatable)")
	slo := flag.Duration("slo", 0, "shed requests queued longer than this before running them (0 disables)")
	retryAfter := flag.Duration("retry-after", 50*time.Millisecond, "Retry-After hint attached to shed responses")
	var canaries modelFlag
	flag.Var(&canaries, "canary", "canary autopilot: ramp candidate against base, name@base:name@cand (repeatable)")
	canaryInterval := flag.Duration("canary-interval", 15*time.Second, "canary evaluation period")
	canarySchedule := flag.String("canary-schedule", "0.05,0.25,0.5", "canary weight ramp, ascending shares in (0,1)")
	var embeds, simcaches modelFlag
	flag.Var(&embeds, "embed", "also serve a loaded model's penultimate-layer embedding under \"<name>.embed\": name[@version] (repeatable)")
	flag.Var(&simcaches, "simcache", "enable the similarity-keyed result cache on a model (requires -embed of the same model): name[@version] (repeatable)")
	simThreshold := flag.Float64("sim-threshold", 0.999, "similarity-cache cosine hit threshold")
	simCapacity := flag.Int("sim-capacity", 256, "similarity-cache entries per model")
	simValidate := flag.Int("sim-validate", 0, "audit every Nth similarity hit against the exact answer (0 disables)")
	storeDir := flag.String("store", "", "mmap-backed artifact store directory: register every indexed model at boot, weights resident via mmap only")
	packDir := flag.String("pack", "", "pack every loaded model into an artifact-store directory and exit")
	flag.Parse()

	loaded, err := loadModels(models.specs, demos.specs, *bundle, *archPath, *paramsPath, *storeDir != "")
	if err != nil {
		log.Fatal(err)
	}
	if *packDir != "" {
		if err := packModels(*packDir, loaded); err != nil {
			log.Fatal(err)
		}
		log.Printf("packed %d model(s) into %s", len(loaded), *packDir)
		return
	}
	quantized, err := quantizeModels(loaded, quantize.specs)
	if err != nil {
		log.Fatal(err)
	}

	// One metrics registry for the whole process: every served model,
	// the admission controller and the streaming listener report into it,
	// and GET /metrics scrapes it.
	mx := metrics.NewRegistry()

	serveOpts := serve.Options{
		Workers:   *workers,
		MaxBatch:  *batch,
		MaxDelay:  *deadline,
		CacheSize: *cache,
		SLO:       *slo,
		Metrics:   mx,
	}
	reg := serve.NewRegistry(serveOpts)

	// Resolve the similarity-cache specs before registration: the cache
	// must be configured when its model's server is built, and its Embed
	// closure routes through the registry to the model's ".embed" sibling
	// (registered below — the closure only runs per request, so order
	// doesn't matter, but the spec must name a model that has one).
	simSet, err := simCacheSet(simcaches.specs, embeds.specs)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, l := range loaded {
		opts := serveOpts
		if id := serve.ModelID(l.Model); simSet[id] {
			opts.SimCache = serve.SimCacheOptions{
				Embed:         registryEmbedFn(reg, embed.ModelName(l.Name()), l.Version()),
				Capacity:      *simCapacity,
				Threshold:     *simThreshold,
				ValidateEvery: *simValidate,
			}
		}
		if err := reg.RegisterWith(l.Model, opts); err != nil {
			log.Fatal(err)
		}
		names = append(names, serve.ModelID(l.Model))
	}
	for _, m := range quantized {
		if err := reg.Register(m); err != nil {
			log.Fatal(err)
		}
		names = append(names, serve.ModelID(m))
	}
	for _, spec := range embeds.specs {
		m, err := embedModel(loaded, spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.Register(m); err != nil {
			log.Fatal(err)
		}
		names = append(names, serve.ModelID(m))
	}
	var artifacts *store.Store
	if *storeDir != "" {
		artifacts, err = store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range artifacts.Entries() {
			m, err := artifacts.Load(e.Name, e.Version)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.Register(m); err != nil {
				log.Fatal(err)
			}
			names = append(names, serve.ModelID(m))
		}
		n, all := artifacts.Mapped()
		log.Printf("artifact store %s: %d model(s) loaded, %d mapping(s), mmap=%v", *storeDir, len(artifacts.Entries()), n, all)
	}
	for _, spec := range weights.specs {
		name, split, err := parseWeights(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.SetWeights(name, split); err != nil {
			log.Fatal(err)
		}
	}

	// The deprecated /infer and /stats endpoints bind to the first
	// registered model's name, routed through its latest alias. A
	// store-only invocation binds them to the first artifact instead.
	var defaultName string
	if len(loaded) > 0 {
		defaultName = loaded[0].Name()
	} else {
		name, _ := model.ParseID(names[0])
		defaultName = name
	}

	// One admission controller guards both protocol front ends, so
	// -max-inflight is a process capacity, not a per-listener one.
	ctrl, err := newAdmission(*maxInflight, *fairShare, quotas.specs, *retryAfter)
	if err != nil {
		log.Fatal(err)
	}
	if ctrl != nil {
		ctrl.RegisterMetrics(mx)
	}

	mux := newMux(reg, defaultName, time.Now(), ctrl, mx, vector.NewStore())
	if *pprofFlag {
		registerPprof(mux)
		log.Print("pprof enabled on /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("serving %s on %s (workers/model=%d batch=%d deadline=%v cache=%d)",
			strings.Join(names, ", "), *addr, reg.Models()[0].Stats.Workers, *batch, *deadline, *cache)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	var ss *stream.Server
	if *listenTCP != "" {
		ln, err := net.Listen("tcp", *listenTCP)
		if err != nil {
			log.Fatal(err)
		}
		ss = stream.NewServer(reg, stream.Options{Admission: ctrl, Metrics: mx})
		go func() {
			log.Printf("streaming (RPS2) on %s", ln.Addr())
			if err := ss.Serve(ln); err != nil && !errors.Is(err, stream.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}

	ramps, err := startCanaries(reg, mx, canaries.specs, *canaryInterval, *canarySchedule)
	if err != nil {
		log.Fatal(err)
	}

	// Graceful shutdown: stop the canary controllers (their probe traffic
	// and weight actuation must not race the teardown), then drain the
	// streaming connections (GOAWAY handshake completes every pipelined
	// frame), then stop accepting HTTP, and only then close the registry
	// so drained work ran on live models throughout.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	for _, c := range ramps {
		c.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if ss != nil {
		if err := ss.Shutdown(ctx); err != nil {
			log.Printf("stream shutdown: %v", err)
		}
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	reg.Close()
	if artifacts != nil {
		// Unmap only after the registry has drained: serving replicas read
		// the mapped weights until their last request completes.
		if err := artifacts.Close(); err != nil {
			log.Printf("artifact store close: %v", err)
		}
	}
}

// simCacheSet resolves -simcache specs to model ids, checking each names a
// model that also has an -embed spec (the cache keys on that embedding).
func simCacheSet(simSpecs, embedSpecs []string) (map[string]bool, error) {
	if len(simSpecs) == 0 {
		return nil, nil
	}
	embedded := make(map[string]bool, len(embedSpecs))
	for _, spec := range embedSpecs {
		name, version, err := parseSimSpec("embed", spec)
		if err != nil {
			return nil, err
		}
		embedded[model.ID(name, version)] = true
	}
	set := make(map[string]bool, len(simSpecs))
	for _, spec := range simSpecs {
		name, version, err := parseSimSpec("simcache", spec)
		if err != nil {
			return nil, err
		}
		id := model.ID(name, version)
		if !embedded[id] {
			return nil, fmt.Errorf("-simcache %s: needs a matching -embed %s (the cache keys on that embedding)", spec, id)
		}
		set[id] = true
	}
	return set, nil
}

// registryEmbedFn adapts the registry's InferInto seam into a
// SimCacheOptions.Embed function: the input runs through the model's
// ".embed" sibling (its own batcher coalesces concurrent lookups) and the
// float64 activations narrow into the caller's float32 buffer. The
// float64 scratch is pooled — the similarity path's documented allocation
// is the cache machinery itself, not a fresh score row per lookup.
func registryEmbedFn(reg *serve.Registry, name, version string) func([]float64, []float32) ([]float32, error) {
	pool := sync.Pool{New: func() any { return new([]float64) }}
	return func(input []float64, dst []float32) ([]float32, error) {
		scratch := pool.Get().(*[]float64)
		res, err := reg.InferInto(context.Background(), name, version, input, *scratch)
		if err != nil {
			pool.Put(scratch)
			return dst, err
		}
		for _, v := range res.Scores {
			dst = append(dst, float32(v))
		}
		*scratch = res.Scores
		pool.Put(scratch)
		return dst, nil
	}
}

// embedModel resolves an -embed spec against the loaded models and builds
// the tapped embedding sibling (internal/embed): same network, the
// classifier head cut off at compile time.
func embedModel(loaded []loadedModel, spec string) (model.Model, error) {
	name, version, err := parseSimSpec("embed", spec)
	if err != nil {
		return nil, err
	}
	for i := range loaded {
		if loaded[i].Name() == name && loaded[i].Version() == version {
			return embed.NewModel(name, version, loaded[i].net, loaded[i].inShape)
		}
	}
	return nil, fmt.Errorf("-embed %s: no loaded model %s (artifact-store models cannot be tapped from flags yet)", spec, model.ID(name, version))
}

// packModels writes every loaded model into an artifact-store directory.
func packModels(dir string, loaded []loadedModel) error {
	if len(loaded) == 0 {
		return errors.New("-pack: no models loaded")
	}
	pms := make([]store.PackModel, len(loaded))
	for i, l := range loaded {
		pms[i] = store.PackModel{Name: l.Name(), Version: l.Version(), Net: l.net, InShape: l.inShape}
	}
	return store.Pack(dir, pms)
}

// startCanaries launches one canary controller per -canary spec
// ("name@base:name@cand"), each ramping its candidate on the shared
// schedule and logging every transition as a structured JSON line.
func startCanaries(reg *serve.Registry, mx *metrics.Registry, specs []string, interval time.Duration, scheduleSpec string) ([]*canary.Controller, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	schedule, err := parseSchedule(scheduleSpec)
	if err != nil {
		return nil, err
	}
	var out []*canary.Controller
	for _, spec := range specs {
		base, cand, ok := strings.Cut(spec, ":")
		if !ok || base == "" || cand == "" {
			return nil, fmt.Errorf("-canary %q: want name@base:name@cand", spec)
		}
		c, err := canary.New(canary.Config{
			Registry:  reg,
			Metrics:   mx,
			Base:      base,
			Candidate: cand,
			Schedule:  schedule,
			Interval:  interval,
			Probes:    canaryProbes(reg, base),
			OnEvent: func(ev canary.Event) {
				b, err := json.Marshal(ev)
				if err != nil {
					log.Printf("canary %s: %+v", ev.Type, ev)
					return
				}
				log.Printf("canary %s", b)
			},
		})
		if err != nil {
			return nil, err
		}
		if err := c.Start(); err != nil {
			return nil, err
		}
		log.Printf("canary %s → %s (interval %v, schedule %v)", base, cand, interval, schedule)
		out = append(out, c)
	}
	return out, nil
}

// parseSchedule parses "-canary-schedule 0.05,0.25,0.5".
func parseSchedule(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	schedule := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-canary-schedule %q: bad weight %q", spec, p)
		}
		schedule = append(schedule, w)
	}
	return schedule, nil
}

// canaryProbes builds a deterministic probe set matching the base model's
// input dimension (the drift check's inputs; seeded so every process
// judges the same canary the same way). An unknown base yields no probes
// and lets canary.New report the real registration error.
func canaryProbes(reg *serve.Registry, baseID string) [][]float64 {
	name, version := model.ParseID(baseID)
	var inDim int
	for _, info := range reg.Models() {
		if info.Name == name && info.Version == version {
			inDim = info.InDim
			break
		}
	}
	if inDim == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(42))
	const nProbes = 32
	probes := make([][]float64, nProbes)
	for i := range probes {
		probes[i] = make([]float64, inDim)
		for j := range probes[i] {
			probes[i][j] = rng.NormFloat64()
		}
	}
	return probes
}

// newAdmission builds the shared admission controller from the capacity
// flags, or returns nil (admit everything) when none are set.
func newAdmission(maxInflight, fairShare int, quotaSpecs []string, retryAfter time.Duration) (*admission.Controller, error) {
	if maxInflight <= 0 && fairShare <= 0 && len(quotaSpecs) == 0 {
		return nil, nil
	}
	cfg := admission.Config{MaxInflight: maxInflight, MaxPerConn: fairShare, RetryAfter: retryAfter}
	if len(quotaSpecs) > 0 {
		cfg.Quota = make(map[string]int, len(quotaSpecs))
		for _, spec := range quotaSpecs {
			name, ns, ok := strings.Cut(spec, "=")
			if !ok || name == "" {
				return nil, fmt.Errorf("-quota %q: want name=N", spec)
			}
			n, err := strconv.Atoi(ns)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("-quota %q: bad limit %q", spec, ns)
			}
			if _, dup := cfg.Quota[name]; dup {
				return nil, fmt.Errorf("-quota %q: model %q given twice", spec, name)
			}
			cfg.Quota[name] = n
		}
	}
	return admission.New(cfg), nil
}

// loadedModel is a registered executor together with the network it was
// compiled from, retained so -quantize can build fixed-point siblings.
type loadedModel struct {
	model.Model
	net     *nn.Network
	inShape []int
}

// loadModels resolves every model flag into an adapter. The deprecated
// single-model flags register under "default@v1" so pre-registry
// invocations keep working; as before the redesign, -bundle takes
// precedence over -arch/-params when both are given.
func loadModels(modelSpecs, demoSpecs []string, bundle, archPath, paramsPath string, allowEmpty bool) ([]loadedModel, error) {
	var out []loadedModel
	if bundle != "" {
		// Prepended so the deprecated single-model flags keep claiming the
		// legacy /infer binding (the first loaded model) over -model specs.
		modelSpecs = append([]string{"default=" + bundle}, modelSpecs...)
		archPath, paramsPath = "", ""
	}
	if archPath != "" || paramsPath != "" {
		if archPath == "" || paramsPath == "" {
			return nil, errors.New("-arch and -params must be given together")
		}
		m, err := loadBundleModel("default", "v1", archPath, paramsPath)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, spec := range modelSpecs {
		name, version, dir, err := splitSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("-model %q: %w", spec, err)
		}
		m, err := loadBundleModel(name, version, filepath.Join(dir, "arch.txt"), filepath.Join(dir, "params.bin"))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, spec := range demoSpecs {
		name, version, arch, err := splitSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("-demo %q: %w", spec, err)
		}
		m, err := demoModel(name, version, arch)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 && !allowEmpty {
		return nil, errors.New("need at least one of -model, -demo, -bundle, -store, or -arch/-params")
	}
	return out, nil
}

// splitSpec parses "name[@version]=value". The bare legacy form "value"
// (no '=') names the model after the value, so `-demo arch1` still works.
func splitSpec(spec string) (name, version, value string, err error) {
	id, value, ok := strings.Cut(spec, "=")
	if !ok {
		id, value = spec, spec
	}
	if id == "" || value == "" {
		return "", "", "", errors.New(`want name[@version]=value`)
	}
	name, version = model.ParseID(id)
	if version == "" {
		version = "v1"
	}
	return name, version, value, nil
}

// parseWeights parses "-weights name=v1:0.9,v2:0.1".
func parseWeights(spec string) (string, map[string]float64, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", nil, fmt.Errorf("-weights %q: want name=version:weight,...", spec)
	}
	split := make(map[string]float64)
	for _, pair := range strings.Split(list, ",") {
		version, ws, ok := strings.Cut(pair, ":")
		if !ok || version == "" {
			return "", nil, fmt.Errorf("-weights %q: bad pair %q", spec, pair)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			return "", nil, fmt.Errorf("-weights %q: bad weight %q", spec, ws)
		}
		if _, dup := split[version]; dup {
			// A typo like v1:0.9,v2:0.3,v1:0.1 would otherwise silently
			// reshape the split (map last-wins).
			return "", nil, fmt.Errorf("-weights %q: version %q given twice", spec, version)
		}
		split[version] = w
	}
	return name, split, nil
}

// loadBundleModel loads a trained network through the engine (modules 1+2
// of Fig. 4) and adapts it for serving.
func loadBundleModel(name, version, archPath, paramsPath string) (loadedModel, error) {
	af, err := os.Open(archPath)
	if err != nil {
		return loadedModel{}, err
	}
	e, err := engine.ParseArchitecture(af, rand.New(rand.NewSource(0)))
	af.Close()
	if err != nil {
		return loadedModel{}, err
	}
	pf, err := os.Open(paramsPath)
	if err != nil {
		return loadedModel{}, err
	}
	err = e.LoadParameters(pf)
	pf.Close()
	if err != nil {
		return loadedModel{}, err
	}
	m, err := e.Model(name, version)
	if err != nil {
		return loadedModel{}, err
	}
	return loadedModel{Model: m, net: e.Net, inShape: e.InShape}, nil
}

// demoModel builds a randomly-initialised built-in architecture.
func demoModel(name, version, arch string) (loadedModel, error) {
	rng := rand.New(rand.NewSource(1))
	var net *nn.Network
	var inShape []int
	switch strings.ToLower(arch) {
	case "arch1":
		net, inShape = nn.Arch1(rng), []int{256}
	case "arch2":
		net, inShape = nn.Arch2(rng), []int{121}
	case "arch3":
		net, inShape = nn.Arch3(rng), []int{32, 32, 3}
	default:
		return loadedModel{}, fmt.Errorf("unknown demo architecture %q (want arch1, arch2 or arch3)", arch)
	}
	m, err := model.FromNetwork(name, version, net, inShape)
	if err != nil {
		return loadedModel{}, err
	}
	return loadedModel{Model: m, net: net, inShape: inShape}, nil
}

// quantizeModels resolves -quantize specs against the loaded models: for
// each "name[@version]=bits" it compiles an Int16Spectral build of the
// matching float model's network under the derived version
// "<version>-q<bits>" (weights and activations at the same precision),
// so cmd/serve can A/B a float and a fixed-point build of one network.
func quantizeModels(loaded []loadedModel, specs []string) ([]model.Model, error) {
	var out []model.Model
	for _, spec := range specs {
		name, version, bitsStr, err := splitSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("-quantize %q: %w", spec, err)
		}
		bits, err := strconv.Atoi(bitsStr)
		if err != nil {
			return nil, fmt.Errorf("-quantize %q: bad bit width %q", spec, bitsStr)
		}
		var src *loadedModel
		for i := range loaded {
			if loaded[i].Name() == name && loaded[i].Version() == version {
				src = &loaded[i]
				break
			}
		}
		if src == nil {
			return nil, fmt.Errorf("-quantize %q: no loaded model %s@%s", spec, name, version)
		}
		qv := fmt.Sprintf("%s-q%d", version, bits)
		m, err := model.Quantized(name, qv, src.net, src.inShape, bits, bits)
		if err != nil {
			return nil, fmt.Errorf("-quantize %q: %w", spec, err)
		}
		out = append(out, m)
	}
	return out, nil
}
