// Command serve exposes the batched inference serving subsystem
// (internal/serve) over HTTP/JSON: the production-facing half the paper's
// deployment story implies once the Fig. 4 engine has produced a trained
// bundle.
//
// Usage:
//
//	serve -bundle dir [-addr :8080] [-workers N] [-batch 16] [-deadline 2ms] [-cache 1024]
//	serve -arch a.txt -params p.bin [flags]
//	serve -demo arch1 [flags]        # randomly-initialised model, for load testing
//
// Endpoints:
//
//	GET  /healthz   liveness: {"status":"ok","uptime_s":...}
//	POST /infer     {"input":[...]} or {"inputs":[[...],...]} → result(s)
//	GET  /stats     serving counters (requests, batches, cache, latency)
//
// The server batches concurrent /infer requests into single forward passes
// across a pool of model replicas; see internal/serve for the scheduler's
// contract.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	bundle := flag.String("bundle", "", "bundle directory from cmd/train (sets -arch and -params)")
	archPath := flag.String("arch", "", "architecture file (Fig. 4 module 1)")
	paramsPath := flag.String("params", "", "parameters file (module 2)")
	demo := flag.String("demo", "", "serve a randomly-initialised built-in architecture: arch1, arch2 or arch3")
	workers := flag.Int("workers", 0, "model replicas (default: GOMAXPROCS)")
	batch := flag.Int("batch", 16, "max requests coalesced into one forward pass")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "max time to hold an open batch")
	cache := flag.Int("cache", 1024, "LRU result-cache entries (0 disables)")
	flag.Parse()

	model, inShape, desc, err := loadModel(*bundle, *archPath, *paramsPath, *demo)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Model:     model,
		InShape:   inShape,
		Workers:   *workers,
		MaxBatch:  *batch,
		MaxDelay:  *deadline,
		CacheSize: *cache,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: newMux(srv, desc, time.Now())}
	go func() {
		log.Printf("serving %s on %s (workers=%d batch=%d deadline=%v cache=%d)",
			desc, *addr, srv.Stats().Workers, *batch, *deadline, *cache)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// Graceful shutdown: stop accepting HTTP, drain in-flight batches.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
}

// newMux builds the HTTP surface over a serving instance. Factored out of
// main so the handler wiring is testable (the /stats-vs-/infer consistency
// regression test drives it through httptest).
func newMux(srv *serve.Server, desc string, start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"model":    desc,
			"uptime_s": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		handleInfer(w, r, srv)
	})
	return mux
}

// loadModel resolves the model sources in priority order: bundle/file
// flags load a trained network through the engine; -demo builds a fresh
// built-in architecture.
func loadModel(bundle, archPath, paramsPath, demo string) (*nn.Network, []int, string, error) {
	if bundle != "" {
		archPath = filepath.Join(bundle, "arch.txt")
		paramsPath = filepath.Join(bundle, "params.bin")
	}
	switch {
	case archPath != "" && paramsPath != "":
		af, err := os.Open(archPath)
		if err != nil {
			return nil, nil, "", err
		}
		e, err := engine.ParseArchitecture(af, rand.New(rand.NewSource(0)))
		af.Close()
		if err != nil {
			return nil, nil, "", err
		}
		pf, err := os.Open(paramsPath)
		if err != nil {
			return nil, nil, "", err
		}
		err = e.LoadParameters(pf)
		pf.Close()
		if err != nil {
			return nil, nil, "", err
		}
		return e.Net, e.InShape, filepath.Base(archPath), nil
	case demo != "":
		rng := rand.New(rand.NewSource(1))
		switch strings.ToLower(demo) {
		case "arch1":
			return nn.Arch1(rng), []int{256}, "arch1 (demo weights)", nil
		case "arch2":
			return nn.Arch2(rng), []int{121}, "arch2 (demo weights)", nil
		case "arch3":
			return nn.Arch3(rng), []int{32, 32, 3}, "arch3 (demo weights)", nil
		}
		return nil, nil, "", fmt.Errorf("unknown -demo architecture %q (want arch1, arch2 or arch3)", demo)
	}
	return nil, nil, "", errors.New("need -bundle, -arch/-params, or -demo")
}

// inferRequest is the /infer request body: either a single input vector or
// a list of them.
type inferRequest struct {
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// Abuse bounds for one /infer call: a request fans out one goroutine per
// input, so both the count and the decoded body size must be capped or a
// single client post could exhaust the process.
const (
	maxInputsPerRequest = 256
	maxBodyBytes        = 64 << 20
)

// handleInfer answers single- and multi-input inference posts. Multiple
// inputs are submitted concurrently so the batching scheduler can coalesce
// them into shared forward passes.
func handleInfer(w http.ResponseWriter, r *http.Request, srv *serve.Server) {
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) > maxInputsPerRequest {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("%d inputs in one request, limit %d", len(req.Inputs), maxInputsPerRequest),
		})
		return
	}
	if req.Input != nil && len(req.Inputs) > 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body sets both "input" and "inputs"; use one`})
		return
	}
	switch {
	case req.Input != nil:
		res, err := srv.Infer(r.Context(), req.Input)
		if err != nil {
			writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, res)
	case len(req.Inputs) > 0:
		results := make([]serve.Result, len(req.Inputs))
		errs := make([]error, len(req.Inputs))
		done := make(chan int, len(req.Inputs))
		for i, in := range req.Inputs {
			go func(i int, in []float64) {
				results[i], errs[i] = srv.Infer(r.Context(), in)
				done <- i
			}(i, in)
		}
		for range req.Inputs {
			<-done
		}
		for _, err := range errs {
			if err != nil {
				writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": `need "input" or "inputs"`})
	}
}

// statusFor maps serving errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
