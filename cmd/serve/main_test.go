package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/serve/admission"
)

func testNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewNetwork(
		nn.NewCircDense(64, 32, 16, rng),
		nn.NewReLU(),
		nn.NewDense(32, 10, rng),
	)
}

// newTestServer starts a registry with one model ("test@v1") behind the
// real HTTP mux.
func newTestServer(t *testing.T, cacheSize int) (*serve.Registry, *httptest.Server) {
	t.Helper()
	reg := serve.NewRegistry(serve.Options{
		Workers:   2,
		MaxBatch:  4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: cacheSize,
	})
	m, err := model.FromNetwork("test", "v1", testNet(1), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(newMux(reg, "test", time.Now(), nil, metrics.NewRegistry(), nil))
	t.Cleanup(func() { hs.Close(); reg.Close() })
	return reg, hs
}

func postInfer(t *testing.T, url string, input []float64) serve.Result {
	t.Helper()
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s status %d", url, resp.StatusCode)
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getStats(url string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s status %d", url, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// TestStatsEndpointConsistentUnderInferLoad is the HTTP-level regression
// test for the /stats race: hit /stats continuously while concurrent
// /infer traffic exercises the LRU cache, and require every response to be
// internally consistent (the cache figures are snapshotted under one
// cache-lock acquisition). CI runs this under -race, which also proves the
// handlers share no unsynchronised state. It drives the deprecated
// single-model endpoints, pinning the facade shim.
func TestStatsEndpointConsistentUnderInferLoad(t *testing.T) {
	const clients, iters, distinct = 4, 60, 5
	_, hs := newTestServer(t, distinct)

	rng := rand.New(rand.NewSource(7))
	inputs := make([][]float64, distinct)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			st, err := getStats(hs.URL + "/stats")
			if err != nil {
				t.Error(err)
				return
			}
			if st.Completed > st.Requests {
				t.Errorf("/stats: completed %d > requests %d", st.Completed, st.Requests)
			}
			if st.CacheHits+st.CacheMisses > st.Requests {
				t.Errorf("/stats: hits %d + misses %d > requests %d", st.CacheHits, st.CacheMisses, st.Requests)
			}
			if st.CacheEntries > distinct {
				t.Errorf("/stats: %d entries, capacity %d", st.CacheEntries, distinct)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				postInfer(t, hs.URL+"/infer", inputs[(c+i)%distinct])
			}
		}(c)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()

	st, err := getStats(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != clients*iters {
		t.Errorf("requests %d, want %d", st.Requests, clients*iters)
	}
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.CacheHits, st.CacheMisses, st.Requests)
	}
}

// TestInferEndpointRoundTrip pins the single- and multi-input /infer
// contract end to end through the v1 model-addressed route: correct
// classes, cache flag on repeats, input validation errors.
func TestInferEndpointRoundTrip(t *testing.T) {
	reg, hs := newTestServer(t, 8)
	inferURL := hs.URL + "/v1/models/test/infer"

	input := make([]float64, 64)
	for i := range input {
		input[i] = float64(i) / 64
	}
	first := postInfer(t, inferURL, input)
	if first.Cached {
		t.Error("first request reported Cached")
	}
	if len(first.Scores) != 10 {
		t.Fatalf("got %d scores, want 10", len(first.Scores))
	}
	again := postInfer(t, inferURL, input)
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	if again.Class != first.Class {
		t.Errorf("cached class %d, first class %d", again.Class, first.Class)
	}
	// The pinned-version route answers identically.
	pinned := postInfer(t, hs.URL+"/v1/models/test@v1/infer", input)
	if pinned.Class != first.Class {
		t.Errorf("pinned-version class %d, routed class %d", pinned.Class, first.Class)
	}

	// Multi-input body.
	body, _ := json.Marshal(map[string]any{"inputs": [][]float64{input, input}})
	resp, err := http.Post(inferURL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var multi struct {
		Results []serve.Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&multi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(multi.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(multi.Results))
	}

	// Wrong feature count is a structured 400, and is not counted as a
	// request.
	st, err := reg.Stats("test", "")
	if err != nil {
		t.Fatal(err)
	}
	before := st.Requests
	requireErrorStatus(t, inferURL, "application/json", []byte(`{"input":[1,2,3]}`), http.StatusBadRequest)
	st, err = reg.Stats("test", "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != before {
		t.Errorf("rejected input counted as a request: %d → %d", before, st.Requests)
	}
}

// requireErrorStatus posts a body and requires the given status plus a
// structured {"error": ...} JSON payload — the regression test for the
// empty-body 500s malformed payloads used to produce.
func requireErrorStatus(t *testing.T, url, contentType string, body []byte, status int) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Errorf("%s: status %d, want %d", url, resp.StatusCode, status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("error response is not JSON: %q", raw)
	}
	if payload.Error == "" {
		t.Errorf("error response has empty \"error\" field: %q", raw)
	}
}

// TestMalformedPayloadsAreStructured400s drives every malformed-payload
// class through the handler: broken JSON, empty body, both input fields,
// oversized multi-input lists, wrong dimensions, and a corrupt wire-format
// request. Each must be a 400 with a JSON {"error": ...} body.
func TestMalformedPayloadsAreStructured400s(t *testing.T) {
	_, hs := newTestServer(t, 0)
	url := hs.URL + "/v1/models/test/infer"

	requireErrorStatus(t, url, "application/json", []byte(`{"input":[1,`), http.StatusBadRequest)
	requireErrorStatus(t, url, "application/json", []byte(``), http.StatusBadRequest)
	requireErrorStatus(t, url, "application/json", []byte(`{}`), http.StatusBadRequest)
	requireErrorStatus(t, url, "application/json", []byte(`{"input":[1],"inputs":[[1]]}`), http.StatusBadRequest)
	requireErrorStatus(t, url, "application/json", []byte(`{"input":[1,2,3]}`), http.StatusBadRequest)

	big, _ := json.Marshal(map[string]any{"inputs": make([][]float64, maxInputsPerRequest+1)})
	requireErrorStatus(t, url, "application/json", big, http.StatusBadRequest)

	// Wire format: bad magic, then a truncated body.
	requireErrorStatus(t, url, serve.WireContentType, []byte("XXXXXXXXXXXX"), http.StatusBadRequest)
	var wire bytes.Buffer
	if err := serve.EncodeWireRequest(&wire, [][]float64{make([]float64, 64)}); err != nil {
		t.Fatal(err)
	}
	requireErrorStatus(t, url, serve.WireContentType, wire.Bytes()[:wire.Len()-8], http.StatusBadRequest)
	// Wire request with the wrong feature count reaches the model and is
	// rejected there, still as a structured 400.
	wire.Reset()
	if err := serve.EncodeWireRequest(&wire, [][]float64{make([]float64, 63)}); err != nil {
		t.Fatal(err)
	}
	requireErrorStatus(t, url, serve.WireContentType, wire.Bytes(), http.StatusBadRequest)
}

// TestUnknownModelIs404 checks both infer and stats routes for unknown
// names and versions.
func TestUnknownModelIs404(t *testing.T) {
	_, hs := newTestServer(t, 0)
	requireErrorStatus(t, hs.URL+"/v1/models/absent/infer", "application/json", []byte(`{"input":[1]}`), http.StatusNotFound)
	requireErrorStatus(t, hs.URL+"/v1/models/test@v9/infer", "application/json", []byte(`{"input":[1]}`), http.StatusNotFound)
	resp, err := http.Get(hs.URL + "/v1/models/absent/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/models/absent/stats: status %d, want 404", resp.StatusCode)
	}
}

// TestMultiModelEndpoints registers a second model with a different input
// shape and checks that the two are individually addressable, listed
// together, and never bleed into each other's caches.
func TestMultiModelEndpoints(t *testing.T) {
	reg, hs := newTestServer(t, 8)
	rng := rand.New(rand.NewSource(2))
	wide := nn.NewNetwork(nn.NewCircDense(128, 32, 16, rng), nn.NewReLU(), nn.NewDense(32, 4, rng))
	m, err := model.FromNetwork("wide", "v1", wide, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}

	res := postInfer(t, hs.URL+"/v1/models/wide/infer", make([]float64, 128))
	if len(res.Scores) != 4 {
		t.Errorf("wide model returned %d scores, want 4", len(res.Scores))
	}
	res = postInfer(t, hs.URL+"/v1/models/test/infer", make([]float64, 64))
	if len(res.Scores) != 10 {
		t.Errorf("test model returned %d scores, want 10", len(res.Scores))
	}
	// A 128-vector addressed to the 64-feature model is a structured 400.
	body, _ := json.Marshal(map[string]any{"input": make([]float64, 128)})
	requireErrorStatus(t, hs.URL+"/v1/models/test/infer", "application/json", body, http.StatusBadRequest)

	// Listing shows both, sorted by name, with shapes and latest flags.
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models []serve.ModelInfo `json:"models"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 2 {
		t.Fatalf("listing has %d models, want 2", len(listing.Models))
	}
	if listing.Models[0].Name != "test" || listing.Models[1].Name != "wide" {
		t.Errorf("listing order %s, %s; want test, wide", listing.Models[0].Name, listing.Models[1].Name)
	}
	for _, info := range listing.Models {
		if !info.Latest {
			t.Errorf("%s@%s not marked latest", info.Name, info.Version)
		}
	}
	if listing.Models[1].InDim != 128 || listing.Models[1].OutDim != 4 {
		t.Errorf("wide dims %d/%d, want 128/4", listing.Models[1].InDim, listing.Models[1].OutDim)
	}
}

// TestWireFormatOverHTTP round-trips a batch through the binary codec end
// to end and checks it agrees with the JSON route on the same inputs.
func TestWireFormatOverHTTP(t *testing.T) {
	_, hs := newTestServer(t, 0)
	url := hs.URL + "/v1/models/test/infer"

	rng := rand.New(rand.NewSource(3))
	inputs := make([][]float64, 3)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	var wire bytes.Buffer
	if err := serve.EncodeWireRequest(&wire, inputs); err != nil {
		t.Fatal(err)
	}
	// Clients commonly append media-type parameters; the wire decoder
	// must still be selected.
	resp, err := http.Post(url, serve.WireContentType+"; charset=binary", &wire)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wire post status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.WireContentType {
		t.Errorf("wire response Content-Type %q", ct)
	}
	results, err := serve.DecodeWireResults(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("wire answered %d of %d inputs", len(results), len(inputs))
	}
	for i, in := range inputs {
		ref := postInfer(t, url, in)
		if results[i].Class != ref.Class {
			t.Errorf("input %d: wire class %d, JSON class %d", i, results[i].Class, ref.Class)
		}
		// The wire batch coalesces into one spectral pass while the JSON
		// singles may run per-vector; the two paths agree to 1e-12, not
		// bit-exactly (DESIGN.md §3).
		for j := range ref.Scores {
			diff := results[i].Scores[j] - ref.Scores[j]
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("input %d score %d: wire %g, JSON %g", i, j, results[i].Scores[j], ref.Scores[j])
			}
		}
	}
}

// TestFlagParsing pins the -model/-demo/-weights spec grammar.
func TestFlagParsing(t *testing.T) {
	name, version, value, err := splitSpec("mnist@v2=bundles/mnist")
	if err != nil || name != "mnist" || version != "v2" || value != "bundles/mnist" {
		t.Errorf("splitSpec full form = %q %q %q %v", name, version, value, err)
	}
	name, version, value, err = splitSpec("mnist=dir")
	if err != nil || name != "mnist" || version != "v1" || value != "dir" {
		t.Errorf("splitSpec default version = %q %q %q %v", name, version, value, err)
	}
	name, version, value, err = splitSpec("arch1")
	if err != nil || name != "arch1" || version != "v1" || value != "arch1" {
		t.Errorf("splitSpec legacy bare form = %q %q %q %v", name, version, value, err)
	}
	if _, _, _, err := splitSpec("=x"); err == nil {
		t.Error("empty name accepted")
	}

	wname, split, err := parseWeights("mnist=v1:0.9,v2:0.1")
	if err != nil || wname != "mnist" || split["v1"] != 0.9 || split["v2"] != 0.1 {
		t.Errorf("parseWeights = %q %v %v", wname, split, err)
	}
	for _, bad := range []string{"mnist", "mnist=v1", "mnist=v1:x", "=v1:1", "mnist=v1:0.9,v1:0.1"} {
		if _, _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights accepted %q", bad)
		}
	}

	// loadModels: demo specs build registrable models; no specs is an error.
	ms, err := loadModels(nil, []string{"fc=arch1", "conv@v2=arch3"}, "", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || serve.ModelID(ms[0]) != "fc@v1" || serve.ModelID(ms[1]) != "conv@v2" {
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = serve.ModelID(m)
		}
		t.Errorf("loadModels demo ids = %v", ids)
	}
	if _, err := loadModels(nil, nil, "", "", "", false); err == nil {
		t.Error("no model sources accepted")
	}
	if _, err := loadModels(nil, []string{"x=arch9"}, "", "", "", false); err == nil ||
		!strings.Contains(err.Error(), "arch9") {
		t.Errorf("unknown demo arch error = %v", err)
	}

	// -quantize derives an Int16Spectral sibling under <version>-q<bits>.
	qs, err := quantizeModels(ms, []string{"fc=12"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || serve.ModelID(qs[0]) != "fc@v1-q12" {
		t.Fatalf("quantizeModels ids = %v", qs)
	}
	if qs[0].InDim() != ms[0].InDim() || qs[0].OutDim() != ms[0].OutDim() {
		t.Errorf("quantized build dims %d/%d differ from float %d/%d",
			qs[0].InDim(), qs[0].OutDim(), ms[0].InDim(), ms[0].OutDim())
	}
	for _, bad := range []string{"fc=x", "fc=99", "nosuch=12", "fc@v9=12"} {
		if _, err := quantizeModels(ms, []string{bad}); err == nil {
			t.Errorf("quantizeModels accepted %q", bad)
		}
	}
}

// TestBundleFlagPrecedence pins the deprecated-flag contract: -bundle
// given together with -arch/-params serves the bundle (as before the
// registry redesign), rather than trying to register default@v1 twice.
func TestBundleFlagPrecedence(t *testing.T) {
	dir := t.TempDir()
	arch := "input 64\ncircfc 32 block=16 act=relu\nfc 10\n"
	e, err := engine.ParseArchitecture(strings.NewReader(arch), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "arch.txt"), []byte(arch), 0o644); err != nil {
		t.Fatal(err)
	}
	var params bytes.Buffer
	if err := engine.SaveParameters(&params, e.Net); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "params.bin"), params.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	ms, err := loadModels(nil, nil, dir, filepath.Join(dir, "arch.txt"), filepath.Join(dir, "params.bin"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || serve.ModelID(ms[0]) != "default@v1" {
		t.Fatalf("bundle+arch/params loaded %d models, want one default@v1", len(ms))
	}
	if ms[0].InDim() != 64 || ms[0].OutDim() != 10 {
		t.Errorf("bundle model dims %d/%d, want 64/10", ms[0].InDim(), ms[0].OutDim())
	}
}

// TestPprofRegistration: the -pprof surface is opt-in — absent by default,
// live under /debug/pprof/ once registered.
func TestPprofRegistration(t *testing.T) {
	_, ts := newTestServer(t, 0)

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: status %d", resp.StatusCode)
	}

	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 2})
	defer reg.Close()
	m, err := model.FromNetwork("test", "v1", testNet(3), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	mux := newMux(reg, "test", time.Now(), nil, metrics.NewRegistry(), nil)
	registerPprof(mux)
	ts2 := httptest.NewServer(mux)
	defer ts2.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(ts2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, body %q", path, resp.StatusCode, body)
		}
	}
}

// TestAdmissionHTTP429 pins the HTTP overload contract: past the
// controller's caps the handler answers 429 with a Retry-After header and
// a structured JSON error, before reading the request body; under the
// caps traffic is unaffected; and a released ticket restores capacity.
func TestAdmissionHTTP429(t *testing.T) {
	reg := serve.NewRegistry(serve.Options{Workers: 1, MaxBatch: 4})
	defer reg.Close()
	m, err := model.FromNetwork("test", "v1", testNet(5), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	ctrl := admission.New(admission.Config{MaxInflight: 1, RetryAfter: 2 * time.Second})
	hs := httptest.NewServer(newMux(reg, "test", time.Now(), ctrl, metrics.NewRegistry(), nil))
	defer hs.Close()
	url := hs.URL + "/v1/models/test/infer"
	body, _ := json.Marshal(map[string]any{"input": make([]float64, 64)})

	// Under the cap: normal service.
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncontended request: status %d", resp.StatusCode)
	}

	// Hold the only slot, then overload.
	ticket, err := ctrl.Admit("test")
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After header %q, want \"2\"", got)
	}
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil || payload.Error == "" {
		t.Errorf("429 body %q is not a structured error", raw)
	}

	// Releasing the ticket restores service.
	ticket.Release()
	resp, err = http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request: status %d", resp.StatusCode)
	}
	st := ctrl.Stats()
	if st.ShedInflight == 0 || st.Inflight != 0 {
		t.Errorf("controller stats %+v after shed and quiesce", st)
	}
}
