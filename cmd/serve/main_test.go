package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
)

// newTestServer starts a small serving instance behind the real HTTP mux.
func newTestServer(t *testing.T, cacheSize int) (*serve.Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	model := nn.NewNetwork(
		nn.NewCircDense(64, 32, 16, rng),
		nn.NewReLU(),
		nn.NewDense(32, 10, rng),
	)
	srv, err := serve.New(serve.Config{
		Model:     model,
		InShape:   []int{64},
		Workers:   2,
		MaxBatch:  4,
		MaxDelay:  100 * time.Microsecond,
		CacheSize: cacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(newMux(srv, "test model", time.Now()))
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func postInfer(t *testing.T, url string, input []float64) serve.Result {
	t.Helper()
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/infer status %d", resp.StatusCode)
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getStats(url string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/stats status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// TestStatsEndpointConsistentUnderInferLoad is the HTTP-level regression
// test for the /stats race: hit /stats continuously while concurrent
// /infer traffic exercises the LRU cache, and require every response to be
// internally consistent (the cache figures are now snapshotted under one
// cache-lock acquisition). CI runs this under -race, which also proves the
// handlers share no unsynchronised state.
func TestStatsEndpointConsistentUnderInferLoad(t *testing.T) {
	const clients, iters, distinct = 4, 60, 5
	_, hs := newTestServer(t, distinct)

	rng := rand.New(rand.NewSource(7))
	inputs := make([][]float64, distinct)
	for i := range inputs {
		inputs[i] = make([]float64, 64)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			st, err := getStats(hs.URL)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Completed > st.Requests {
				t.Errorf("/stats: completed %d > requests %d", st.Completed, st.Requests)
			}
			if st.CacheHits+st.CacheMisses > st.Requests {
				t.Errorf("/stats: hits %d + misses %d > requests %d", st.CacheHits, st.CacheMisses, st.Requests)
			}
			if st.CacheEntries > distinct {
				t.Errorf("/stats: %d entries, capacity %d", st.CacheEntries, distinct)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				postInfer(t, hs.URL, inputs[(c+i)%distinct])
			}
		}(c)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()

	st, err := getStats(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != clients*iters {
		t.Errorf("requests %d, want %d", st.Requests, clients*iters)
	}
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.CacheHits, st.CacheMisses, st.Requests)
	}
}

// TestInferEndpointRoundTrip pins the single- and multi-input /infer
// contract end to end: correct classes, cache flag on repeats, input
// validation errors.
func TestInferEndpointRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t, 8)

	input := make([]float64, 64)
	for i := range input {
		input[i] = float64(i) / 64
	}
	first := postInfer(t, hs.URL, input)
	if first.Cached {
		t.Error("first request reported Cached")
	}
	if len(first.Scores) != 10 {
		t.Fatalf("got %d scores, want 10", len(first.Scores))
	}
	again := postInfer(t, hs.URL, input)
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	if again.Class != first.Class {
		t.Errorf("cached class %d, first class %d", again.Class, first.Class)
	}

	// Multi-input body.
	body, _ := json.Marshal(map[string]any{"inputs": [][]float64{input, input}})
	resp, err := http.Post(hs.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var multi struct {
		Results []serve.Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&multi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(multi.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(multi.Results))
	}

	// Wrong feature count is a 400, and is not counted as a request.
	before := srv.Stats().Requests
	bad, _ := json.Marshal(map[string]any{"input": []float64{1, 2, 3}})
	resp, err = http.Post(hs.URL+"/infer", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short input: status %d, want 400", resp.StatusCode)
	}
	if after := srv.Stats().Requests; after != before {
		t.Errorf("rejected input counted as a request: %d → %d", before, after)
	}
}
