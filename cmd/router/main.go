// Command router is the fleet tier: a shared-nothing proxy fronting N
// cmd/serve backends over persistent RPS2 connections, re-exposing the
// same HTTP and RPS2 front ends one backend exposes — so capacity scales
// horizontally without clients learning a new protocol or losing the
// registry semantics (aliases, pinned versions, A/B weight splits all
// keep resolving in the backends).
//
// Usage:
//
//	router -backend 10.0.0.1:9090=http://10.0.0.1:8080 \
//	       -backend 10.0.0.2:9090=http://10.0.0.2:8080 [flags]
//
// Each -backend names one cmd/serve process: its RPS2 address (the data
// path) and, after "=", its HTTP base URL, scraped every -refresh for
// the registry view (/v1/models → which routes the backend can answer)
// and health signals (/metrics → windowed p99 and shed rate). The bare
// form "-backend addr" skips scraping: the backend is assumed to hold
// every route and is health-checked by synthetic probes only.
//
// Fault tolerance, per backend:
//
//   - A three-state circuit breaker (closed / open / half-open) driven
//     by data-path failures, synthetic probe infers, and the scraped
//     health signals (-max-p99 / -max-shed-rate trip it even while the
//     data path still answers). Open circuits reopen through jittered
//     exponential backoff probes.
//   - Idempotent infers that fail with a transport-shaped error (conn
//     lost, 503, GOAWAY) retry once on a different healthy backend,
//     bounded by a token-bucket retry budget (-retry-budget per request,
//     so retries stay near 10% of traffic by default). Typed 429
//     overload sheds pass through untouched.
//   - POST /v1/backends/{addr}/drain excludes a backend from routing
//     while its in-flight work completes (the stream layer's GOAWAY
//     handshake); /undrain restores it.
//
// Endpoints: the cmd/serve /v1 surface (models, infer in JSON or wire
// v1) answered by the fleet, plus GET /v1/backends (per-backend breaker
// / drain / health rows), the drain admin posts, GET /stats, /healthz
// and /metrics. With -listen-tcp the same routing is served over RPS2;
// SIGTERM drains it with the same GOAWAY handshake cmd/serve uses, so a
// router restart behind a TCP balancer loses no requests either.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/serve/stream"
)

// backendFlag collects repeated "-backend addr[=httpurl]" occurrences.
type backendFlag struct{ specs []string }

func (f *backendFlag) String() string     { return strings.Join(f.specs, ",") }
func (f *backendFlag) Set(s string) error { f.specs = append(f.specs, s); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("router: ")
	addr := flag.String("addr", ":8081", "HTTP listen address")
	listenTCP := flag.String("listen-tcp", "", "also serve the routed RPS2 protocol on this TCP address (empty disables)")
	var backends backendFlag
	flag.Var(&backends, "backend", "one backend: rps2addr=httpurl, or bare rps2addr to skip view/health scraping (repeatable)")
	conns := flag.Int("conns", 1, "persistent RPS2 connections per backend")
	refresh := flag.Duration("refresh", 500*time.Millisecond, "view and health scrape interval")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "synthetic probe infer interval")
	probeTimeout := flag.Duration("probe-timeout", 250*time.Millisecond, "synthetic probe infer timeout")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive failures that open a backend's circuit")
	breakerOpen := flag.Duration("breaker-open", 200*time.Millisecond, "base open-circuit backoff before a reopen probe")
	breakerOpenMax := flag.Duration("breaker-open-max", 5*time.Second, "open-circuit backoff cap")
	retryBudget := flag.Float64("retry-budget", 0.1, "retry tokens accrued per routed request (negative disables retries)")
	maxP99 := flag.Duration("max-p99", 0, "trip a backend's breaker when its scraped windowed p99 exceeds this (0 disables)")
	maxShedRate := flag.Float64("max-shed-rate", 0, "trip the breaker when the scraped windowed shed rate exceeds this (0 disables)")
	minWindow := flag.Int("min-window", 16, "minimum scraped request window before p99/shed verdicts apply")
	affinity := flag.Bool("affinity", false, "route inference by rendezvous hashing on the route (cache affinity) instead of least-loaded")
	proxyTimeout := flag.Duration("proxy-timeout", 30*time.Second, "timeout for one proxied vector/embed call")
	seed := flag.Int64("seed", 0, "breaker jitter seed (0 seeds from the clock)")
	flag.Parse()

	cfgs, err := parseBackends(backends.specs)
	if err != nil {
		log.Fatal(err)
	}

	mx := metrics.NewRegistry()
	rt, err := router.New(router.Options{
		Backends:        cfgs,
		Conns:           *conns,
		RefreshInterval: *refresh,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		Breaker: router.BreakerConfig{
			Failures: *breakerFailures,
			OpenBase: *breakerOpen,
			OpenMax:  *breakerOpenMax,
		},
		RetryBudget:  *retryBudget,
		MaxP99:       *maxP99,
		MaxShedRate:  *maxShedRate,
		MinWindow:    *minWindow,
		Affinity:     *affinity,
		ProxyTimeout: *proxyTimeout,
		Metrics:      mx,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: rt.Mux(mx)}
	go func() {
		log.Printf("routing %d backends on %s (conns/backend=%d refresh=%v probe=%v)",
			len(cfgs), *addr, *conns, *refresh, *probeInterval)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// The RPS2 front end serves the router as a stream backend: the same
	// listener code cmd/serve uses, handed the fleet instead of a
	// registry.
	var ss *stream.Server
	if *listenTCP != "" {
		ln, err := net.Listen("tcp", *listenTCP)
		if err != nil {
			log.Fatal(err)
		}
		ss = stream.NewServer(rt, stream.Options{Metrics: mx})
		go func() {
			log.Printf("streaming (RPS2) on %s", ln.Addr())
			if err := ss.Serve(ln); err != nil && !errors.Is(err, stream.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}

	// Graceful drain mirrors cmd/serve: GOAWAY-drain the streaming front
	// end (every pipelined frame completes), stop accepting HTTP, then
	// close the router — which drains its own backend connections the
	// same way, so nothing in flight anywhere is dropped.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if ss != nil {
		if err := ss.Shutdown(ctx); err != nil {
			log.Printf("stream shutdown: %v", err)
		}
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := rt.Close(ctx); err != nil {
		log.Printf("router close: %v", err)
	}
}

// parseBackends resolves -backend specs ("addr=httpurl" or bare "addr")
// into configs, rejecting duplicates — two entries for one address would
// silently double a backend's routing weight.
func parseBackends(specs []string) ([]router.BackendConfig, error) {
	if len(specs) == 0 {
		return nil, errors.New("need at least one -backend addr=httpurl")
	}
	seen := make(map[string]bool, len(specs))
	cfgs := make([]router.BackendConfig, 0, len(specs))
	for _, spec := range specs {
		addr, url, _ := strings.Cut(spec, "=")
		if addr == "" {
			return nil, fmt.Errorf("-backend %q: want rps2addr=httpurl", spec)
		}
		if seen[addr] {
			return nil, fmt.Errorf("-backend %q: address %s given twice", spec, addr)
		}
		seen[addr] = true
		if url != "" && !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("-backend %q: HTTP URL must start with http:// or https://", spec)
		}
		cfgs = append(cfgs, router.BackendConfig{Addr: addr, HTTPURL: strings.TrimSuffix(url, "/")})
	}
	return cfgs, nil
}
