// Command infer is the on-device half of the paper's flow (Fig. 4): it
// loads an architecture file, a trained-parameters file and IDX test inputs,
// runs the FFT-based inference engine, and reports predictions, accuracy and
// the modelled per-image latency on a chosen Table-I platform and runtime.
//
// Usage:
//
//	infer -bundle dir [-device "Huawei Honor 6X"] [-env cpp|java] [-battery]
//	infer -arch a.txt -params p.bin -images i.idx -labels l.idx [-channels 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/engine"
	"repro/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("infer: ")
	bundle := flag.String("bundle", "", "bundle directory from cmd/train (sets all file flags)")
	archPath := flag.String("arch", "", "architecture file (Fig. 4 module 1)")
	paramsPath := flag.String("params", "", "parameters file (module 2)")
	imagesPath := flag.String("images", "", "IDX image file (module 3)")
	labelsPath := flag.String("labels", "", "IDX label file (module 3)")
	channels := flag.Int("channels", 0, "image channels (default: infer from architecture)")
	device := flag.String("device", "Huawei Honor 6X", "Table-I platform to model")
	env := flag.String("env", "cpp", "runtime environment: cpp or java")
	battery := flag.Bool("battery", false, "model battery power instead of plugged in")
	show := flag.Int("show", 10, "print the first N predictions")
	batch := flag.Int("batch", 64, "samples per compiled forward pass")
	flag.Parse()

	if *bundle != "" {
		*archPath = filepath.Join(*bundle, "arch.txt")
		*paramsPath = filepath.Join(*bundle, "params.bin")
		*imagesPath = filepath.Join(*bundle, "test-images.idx")
		*labelsPath = filepath.Join(*bundle, "test-labels.idx")
	}
	if *archPath == "" || *paramsPath == "" || *imagesPath == "" || *labelsPath == "" {
		log.Fatal("need -bundle, or all of -arch/-params/-images/-labels")
	}

	// Module 1: architecture parser.
	af, err := os.Open(*archPath)
	if err != nil {
		log.Fatal(err)
	}
	e, err := engine.ParseArchitecture(af, rand.New(rand.NewSource(0)))
	af.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Module 2: parameters parser.
	pf, err := os.Open(*paramsPath)
	if err != nil {
		log.Fatal(err)
	}
	err = e.LoadParameters(pf)
	pf.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Module 3: inputs parser.
	if *channels == 0 {
		*channels = 1
		if len(e.InShape) == 3 {
			*channels = e.InShape[2]
		}
	}
	imf, err := os.Open(*imagesPath)
	if err != nil {
		log.Fatal(err)
	}
	lbf, err := os.Open(*labelsPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := e.LoadInputs(imf, lbf, *channels)
	imf.Close()
	lbf.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Module 4: inference engine, through a compiled program — one
	// Compile, then allocation-free batched forward passes over the test
	// set, instead of the allocating per-call Predict path (which also
	// ran the whole set a second time for the accuracy number).
	preds, err := e.PredictBatched(data, *batch)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p == data.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(preds))

	spec, err := platform.ByName(*device)
	if err != nil {
		names := make([]string, 0, 3)
		for _, s := range platform.Platforms() {
			names = append(names, s.Name)
		}
		log.Fatalf("%v (available: %s)", err, strings.Join(names, ", "))
	}
	cfg := platform.Config{Spec: spec, Env: platform.EnvCPP, Battery: *battery}
	if strings.EqualFold(*env, "java") {
		cfg.Env = platform.EnvJava
	}

	n := *show
	if n > len(preds) {
		n = len(preds)
	}
	for i := 0; i < n; i++ {
		mark := " "
		if preds[i] != data.Labels[i] {
			mark = "x"
		}
		fmt.Printf("sample %3d: predicted %d, label %d %s\n", i, preds[i], data.Labels[i], mark)
	}
	fmt.Printf("\naccuracy: %.2f%% over %d samples\n", acc*100, data.Len())
	fmt.Printf("modelled core runtime on %s: %.1f µs/image\n", cfg, e.DeviceLatencyUS(cfg))
}
